package mc

import (
	"sync"

	"repro/internal/obs"
)

// AsyncProgress wraps a Progress sink so the engine never blocks on it.
// The engine's Progress callback runs under an engine-wide mutex (see
// Config.Progress), so a sink that writes to a terminal over a slow
// pipe, or renders while an HTTP scrape holds a lock, stalls every
// point's checkpoint processing. AsyncProgress decouples them: the
// returned callback enqueues the report on a buffered channel and
// returns immediately; a dedicated goroutine drains the channel into
// sink, preserving order. When the buffer is full the report is DROPPED
// (progress reporting is advisory — the engine's results never depend
// on it) and counted.
//
// buf is the queue depth (≤ 0 means 64). reg, when non-nil, receives
// the mc_progress_reports_total and mc_progress_dropped_total counters.
//
// stop flushes the queue, waits for the drain goroutine, and returns
// the number of dropped reports. Call it after mc.Run returns; the
// callback must not be invoked after stop.
func AsyncProgress(sink func(Progress), buf int, reg *obs.Registry) (cb func(Progress), stop func() (dropped int64)) {
	if buf <= 0 {
		buf = 64
	}
	ch := make(chan Progress, buf)
	var (
		mu      sync.Mutex
		dropped int64
		done    = make(chan struct{})
	)
	var reports, drops *obs.Counter
	if reg != nil {
		reports = reg.Counter("mc_progress_reports_total")
		drops = reg.Counter("mc_progress_dropped_total")
	}
	go func() {
		defer close(done)
		for p := range ch {
			sink(p)
		}
	}()
	cb = func(p Progress) {
		if reports != nil {
			reports.Inc()
		}
		select {
		case ch <- p:
		default:
			mu.Lock()
			dropped++
			mu.Unlock()
			if drops != nil {
				drops.Inc()
			}
		}
	}
	stop = func() int64 {
		close(ch)
		<-done
		mu.Lock()
		defer mu.Unlock()
		return dropped
	}
	return cb, stop
}
