package match

import (
	"testing"
)

// decodeWeights turns fuzz bytes into a small symmetric non-negative
// weight matrix: the first byte picks the vertex count (2..8), the rest
// fill the upper triangle (mod a small range so ties and zeros — absent
// edges — are common).
func decodeWeights(data []byte) (n int, w [][]int64) {
	if len(data) == 0 {
		return 0, nil
	}
	n = 2 + int(data[0]%7)
	data = data[1:]
	w = make([][]int64, n)
	for i := range w {
		w[i] = make([]int64, n)
	}
	k := 0
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			var b byte
			if k < len(data) {
				b = data[k]
			}
			k++
			w[u][v] = int64(b % 17)
			w[v][u] = w[u][v]
		}
	}
	return n, w
}

// FuzzBlossom feeds random weight matrices to the blossom solver and
// checks the structural invariants every matching must satisfy:
// symmetry (mate[mate[u]] == u), edge validity (matched pairs have
// positive weight), total-weight consistency, and 2-opt local
// optimality — no pair swap or single unmatched edge improves the
// matching, which would contradict maximality.
func FuzzBlossom(f *testing.F) {
	f.Add([]byte{2, 5})
	f.Add([]byte{4, 1, 2, 3, 4, 5, 6})
	f.Add([]byte{7, 0, 0, 0, 9, 9, 9, 1, 1, 1, 2, 2, 2, 3, 3, 3, 4, 4, 4, 5, 5})
	f.Fuzz(func(t *testing.T, data []byte) {
		n, w := decodeWeights(data)
		if n == 0 {
			return
		}
		mate, total := MaxWeightMatching(n, func(u, v int) int64 { return w[u][v] })
		if len(mate) != n {
			t.Fatalf("mate has %d entries, want %d", len(mate), n)
		}
		var sum int64
		for u, v := range mate {
			if v == -1 {
				continue
			}
			if v < 0 || v >= n || v == u {
				t.Fatalf("mate[%d] = %d out of range", u, v)
			}
			if mate[v] != u {
				t.Fatalf("asymmetric: mate[%d]=%d but mate[%d]=%d", u, v, v, mate[v])
			}
			if w[u][v] <= 0 {
				t.Fatalf("matched absent edge (%d,%d) of weight %d", u, v, w[u][v])
			}
			if v > u {
				sum += w[u][v]
			}
		}
		if sum != total {
			t.Fatalf("reported total %d, matched edges sum to %d", total, sum)
		}
		// Local optimality. Unmatched edge between two free vertices:
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if mate[u] == -1 && mate[v] == -1 && w[u][v] > 0 {
					t.Fatalf("free vertices %d,%d joined by weight-%d edge", u, v, w[u][v])
				}
			}
		}
		// 2-opt: re-pairing two matched edges (a,b),(c,d) as (a,c),(b,d)
		// or (a,d),(b,c) must not increase the total weight.
		for a := 0; a < n; a++ {
			b := mate[a]
			if b < a {
				continue
			}
			for c := a + 1; c < n; c++ {
				d := mate[c]
				if d < c || c == b {
					continue
				}
				cur := w[a][b] + w[c][d]
				if w[a][c]+w[b][d] > cur || w[a][d]+w[b][c] > cur {
					t.Fatalf("swap of (%d,%d),(%d,%d) improves the matching", a, b, c, d)
				}
			}
		}
		// A reused Matcher must reproduce the one-shot result exactly.
		var m Matcher
		flat := make([]int64, n*n)
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				flat[u*n+v] = w[u][v]
			}
		}
		for round := 0; round < 2; round++ {
			mate2, total2 := m.MaxWeight(n, flat)
			if total2 != total {
				t.Fatalf("round %d: reused matcher total %d, want %d", round, total2, total)
			}
			for u := range mate {
				if mate2[u] != mate[u] {
					t.Fatalf("round %d: reused matcher mate[%d]=%d, want %d", round, u, mate2[u], mate[u])
				}
			}
		}
	})
}
