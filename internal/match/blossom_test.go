package match

import (
	"math/rand"
	"testing"
)

// bruteMaxMatching returns the maximum total weight over all matchings
// (not necessarily perfect) of the complete graph with the given weights,
// treating zero-weight pairs as absent edges.
func bruteMaxMatching(n int, w [][]int64) int64 {
	used := make([]bool, n)
	var rec func(u int) int64
	rec = func(u int) int64 {
		for u < n && used[u] {
			u++
		}
		if u >= n {
			return 0
		}
		used[u] = true
		best := rec(u + 1) // leave u unmatched
		for v := u + 1; v < n; v++ {
			if used[v] || w[u][v] == 0 {
				continue
			}
			used[v] = true
			if got := w[u][v] + rec(u+1); got > best {
				best = got
			}
			used[v] = false
		}
		used[u] = false
		return best
	}
	return rec(0)
}

// bruteMinPerfect returns the minimum total weight over all perfect
// matchings via bitmask DP.
func bruteMinPerfect(n int, w [][]int64) int64 {
	const inf = int64(1) << 60
	dp := make([]int64, 1<<uint(n))
	for i := range dp {
		dp[i] = inf
	}
	dp[0] = 0
	for mask := 0; mask < 1<<uint(n); mask++ {
		if dp[mask] == inf {
			continue
		}
		u := 0
		for u < n && mask&(1<<uint(u)) != 0 {
			u++
		}
		if u == n {
			continue
		}
		for v := u + 1; v < n; v++ {
			if mask&(1<<uint(v)) != 0 {
				continue
			}
			next := mask | 1<<uint(u) | 1<<uint(v)
			if cand := dp[mask] + w[u][v]; cand < dp[next] {
				dp[next] = cand
			}
		}
	}
	return dp[1<<uint(n)-1]
}

func randWeights(rng *rand.Rand, n int, maxW int64) [][]int64 {
	w := make([][]int64, n)
	for i := range w {
		w[i] = make([]int64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			w[i][j] = rng.Int63n(maxW)
			w[j][i] = w[i][j]
		}
	}
	return w
}

func matchingWeight(t *testing.T, n int, w [][]int64, mate []int) int64 {
	t.Helper()
	var total int64
	for u := 0; u < n; u++ {
		v := mate[u]
		if v == -1 {
			continue
		}
		if v < 0 || v >= n || mate[v] != u {
			t.Fatalf("mate inconsistent: mate[%d]=%d, mate[%d]=%d", u, v, v, mate[v])
		}
		if v > u {
			total += w[u][v]
		}
	}
	return total
}

func TestMaxWeightMatchingSmallExact(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(8)
		w := randWeights(rng, n, 20)
		mate, total := MaxWeightMatching(n, func(u, v int) int64 { return w[u][v] })
		got := matchingWeight(t, n, w, mate)
		if got != total {
			t.Fatalf("n=%d trial=%d reported total %d != recomputed %d", n, trial, total, got)
		}
		want := bruteMaxMatching(n, w)
		if total != want {
			t.Fatalf("n=%d trial=%d max matching weight %d, brute force %d (w=%v)", n, trial, total, want, w)
		}
	}
}

func TestMaxWeightMatchingTriangle(t *testing.T) {
	// A triangle forces an odd component; the best matching picks the
	// single heaviest edge.
	w := [][]int64{
		{0, 5, 3},
		{5, 0, 4},
		{3, 4, 0},
	}
	mate, total := MaxWeightMatching(3, func(u, v int) int64 { return w[u][v] })
	if total != 5 {
		t.Fatalf("triangle total = %d, want 5", total)
	}
	if mate[0] != 1 || mate[1] != 0 || mate[2] != -1 {
		t.Fatalf("triangle mate = %v", mate)
	}
}

func TestMaxWeightMatchingBlossomStress(t *testing.T) {
	// Larger random instances with weights chosen to force many equal
	// distances (odd-cycle structure), checked for internal consistency
	// and against brute force when n is small enough.
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 120; trial++ {
		n := 2 + rng.Intn(9)
		w := randWeights(rng, n, 5) // small range -> many ties -> blossoms
		mate, total := MaxWeightMatching(n, func(u, v int) int64 { return w[u][v] })
		if got := matchingWeight(t, n, w, mate); got != total {
			t.Fatalf("n=%d inconsistent total", n)
		}
		if want := bruteMaxMatching(n, w); total != want {
			t.Fatalf("n=%d trial=%d weight %d want %d (w=%v)", n, trial, total, want, w)
		}
	}
}

func TestMinWeightPerfectMatchingExact(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		n := 2 * (1 + rng.Intn(5))
		w := randWeights(rng, n, 15)
		// Perfect matching needs every pair usable; keep weights >= 0
		// and remember 0 means "absent" only in MaxWeightMatching, not
		// in the min-perfect wrapper (which shifts internally).
		mate, total := MinWeightPerfectMatching(n, func(u, v int) int64 { return w[u][v] })
		for u, v := range mate {
			if v == -1 {
				t.Fatalf("n=%d vertex %d unmatched in perfect matching", n, u)
			}
		}
		if got := matchingWeight(t, n, w, mate); got != total {
			t.Fatalf("n=%d total %d != recomputed %d", n, total, got)
		}
		if want := bruteMinPerfect(n, w); total != want {
			t.Fatalf("n=%d trial=%d min perfect %d want %d (w=%v)", n, trial, total, want, w)
		}
	}
}

func TestMinWeightPerfectMatchingOddPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("odd vertex count did not panic")
		}
	}()
	MinWeightPerfectMatching(3, func(u, v int) int64 { return 1 })
}

func TestEmptyAndSingle(t *testing.T) {
	mate, total := MaxWeightMatching(0, nil)
	if mate != nil || total != 0 {
		t.Error("empty graph mishandled")
	}
	mate, total = MaxWeightMatching(1, func(u, v int) int64 { return 0 })
	if len(mate) != 1 || mate[0] != -1 || total != 0 {
		t.Errorf("single vertex mishandled: %v %d", mate, total)
	}
	mate, total = MinWeightPerfectMatching(0, nil)
	if mate != nil || total != 0 {
		t.Error("empty perfect matching mishandled")
	}
}

func TestMinPerfectLargerConsistency(t *testing.T) {
	// n up to 40: can't brute force, but verify perfectness and that the
	// weight is no worse than a greedy matching.
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 20; trial++ {
		n := 2 * (10 + rng.Intn(11))
		w := randWeights(rng, n, 1000)
		mate, total := MinWeightPerfectMatching(n, func(u, v int) int64 { return w[u][v] })
		var greedy int64
		used := make([]bool, n)
		for u := 0; u < n; u++ {
			if used[u] {
				continue
			}
			best, bi := int64(1)<<62, -1
			for v := u + 1; v < n; v++ {
				if !used[v] && w[u][v] < best {
					best, bi = w[u][v], v
				}
			}
			used[u], used[bi] = true, true
			greedy += best
		}
		if got := matchingWeight(t, n, w, mate); got != total {
			t.Fatalf("n=%d total mismatch", n)
		}
		if total > greedy {
			t.Fatalf("n=%d blossom %d worse than greedy %d", n, total, greedy)
		}
	}
}

func BenchmarkMinWeightPerfectMatching40(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	w := randWeights(rng, 40, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MinWeightPerfectMatching(40, func(u, v int) int64 { return w[u][v] })
	}
}
