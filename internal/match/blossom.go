// Package match implements exact maximum-weight matching in general
// graphs via the blossom algorithm (Edmonds' primal-dual method in the
// O(n³) formulation), plus a minimum-weight perfect-matching wrapper.
//
// The NISQ+ paper compares its approximate SFQ decoder against the
// minimum-weight perfect-matching (MWPM) surface-code decoder of Fowler
// et al.; this package is that baseline's combinatorial core, built from
// scratch on the standard dual-variable formulation: labels on vertices
// and blossoms, alternating trees grown from free vertices, blossom
// shrinking at odd cycles, and dual adjustments when the trees get stuck.
package match

// Infinite is the sentinel slack used during dual adjustment.
const infinite = int64(1) << 60

// graph carries the working state of one matching computation.
// Vertices are 1-indexed; indices above n denote shrunken blossoms.
type graph struct {
	n  int // number of real vertices
	nx int // current number of vertex slots in use (incl. blossoms)

	w     [][]int64 // w[u][v]: edge weight between real-or-blossom slots
	eu    [][]int   // eu[u][v]: real endpoint on u's side of edge (u,v)
	ev    [][]int   // ev[u][v]: real endpoint on v's side
	lab   []int64   // dual labels
	match []int     // match[u]: real endpoint matched to u (0 = free)
	slack []int     // slack[x]: real vertex with the tightest edge into x
	st    []int     // st[x]: the top-level blossom containing x
	pa    []int     // pa[x]: parent edge endpoint in the alternating tree
	side  []int8    // side[x]: -1 unvisited, 0 outer, 1 inner
	vis   []int     // visit stamps for LCA search
	visT  int

	flowerFrom [][]int // flowerFrom[b][x]: sub-blossom of b containing real x
	flower     [][]int // blossom cycles

	q []int // BFS queue of real vertices
}

// MaxWeightMatching computes a maximum-weight matching of the complete
// graph on n vertices with the given symmetric weight matrix (0-indexed;
// weights must be non-negative, and zero-weight pairs are treated as
// absent edges). It returns mate, where mate[u] is u's partner or -1,
// and the total matched weight.
func MaxWeightMatching(n int, weight func(u, v int) int64) (mate []int, total int64) {
	if n == 0 {
		return nil, 0
	}
	g := newGraph(n, weight)
	for g.phase() {
	}
	mate = make([]int, n)
	for u := 1; u <= n; u++ {
		if g.match[u] != 0 {
			mate[u-1] = g.match[u] - 1
			if g.match[u] < u {
				total += g.w[u][g.match[u]] / 2
			}
		} else {
			mate[u-1] = -1
		}
	}
	return mate, total
}

// MinWeightPerfectMatching computes a minimum-weight perfect matching of
// the complete graph on an even number of vertices. It returns mate and
// the total weight. Weights may be any non-negative values.
func MinWeightPerfectMatching(n int, weight func(u, v int) int64) (mate []int, total int64) {
	if n%2 != 0 {
		panic("match: perfect matching requires an even vertex count")
	}
	if n == 0 {
		return nil, 0
	}
	var wMax int64
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if w := weight(u, v); w > wMax {
				wMax = w
			}
		}
	}
	// Flip weights so that minimum becomes maximum; the +1 keeps every
	// edge strictly positive, which makes the maximum-weight matching
	// perfect on a complete graph.
	mate, flipped := MaxWeightMatching(n, func(u, v int) int64 {
		return wMax - weight(u, v) + 1
	})
	for u, v := range mate {
		if v < 0 {
			panic("match: perfect matching not found on complete graph")
		}
		if v > u {
			total += weight(u, v)
		}
	}
	_ = flipped
	return mate, total
}

func newGraph(n int, weight func(u, v int) int64) *graph {
	slots := 2*n + 1
	g := &graph{n: n, nx: n}
	g.w = make([][]int64, slots)
	g.eu = make([][]int, slots)
	g.ev = make([][]int, slots)
	g.flowerFrom = make([][]int, slots)
	for i := range g.w {
		g.w[i] = make([]int64, slots)
		g.eu[i] = make([]int, slots)
		g.ev[i] = make([]int, slots)
		g.flowerFrom[i] = make([]int, n+1)
	}
	g.lab = make([]int64, slots)
	g.match = make([]int, slots)
	g.slack = make([]int, slots)
	g.st = make([]int, slots)
	g.pa = make([]int, slots)
	g.side = make([]int8, slots)
	g.vis = make([]int, slots)
	g.flower = make([][]int, slots)

	var wMax int64
	for u := 1; u <= n; u++ {
		g.st[u] = u
		g.flowerFrom[u][u] = u
		for v := 1; v <= n; v++ {
			g.eu[u][v], g.ev[u][v] = u, v
			if u != v {
				// Doubled weights keep every dual adjustment integral.
				g.w[u][v] = 2 * weight(u-1, v-1)
				if g.w[u][v] > wMax {
					wMax = g.w[u][v]
				}
			}
		}
	}
	for u := 1; u <= n; u++ {
		g.lab[u] = wMax / 2
	}
	return g
}

// eDelta is the dual slack of the edge between real vertices u and v as
// recorded in slot pair (u,v).
func (g *graph) eDelta(u, v int) int64 {
	return g.lab[g.eu[u][v]] + g.lab[g.ev[u][v]] - g.w[g.eu[u][v]][g.ev[u][v]]
}

func (g *graph) updateSlack(u, x int) {
	if g.slack[x] == 0 || g.eDelta(u, x) < g.eDelta(g.slack[x], x) {
		g.slack[x] = u
	}
}

func (g *graph) setSlack(x int) {
	g.slack[x] = 0
	for u := 1; u <= g.n; u++ {
		if g.w[u][x] > 0 && g.st[u] != x && g.side[g.st[u]] == 0 {
			g.updateSlack(u, x)
		}
	}
}

func (g *graph) qPush(x int) {
	if x <= g.n {
		g.q = append(g.q, x)
		return
	}
	for _, i := range g.flower[x] {
		g.qPush(i)
	}
}

func (g *graph) setSt(x, b int) {
	g.st[x] = b
	if x > g.n {
		for _, i := range g.flower[x] {
			g.setSt(i, b)
		}
	}
}

// getPr orients blossom b's cycle so that sub-blossom xr sits at an even
// position and returns that position.
func (g *graph) getPr(b, xr int) int {
	pr := 0
	for i, f := range g.flower[b] {
		if f == xr {
			pr = i
			break
		}
	}
	if pr%2 == 1 {
		// Reverse the cycle (keeping the base fixed) to make pr even.
		fl := g.flower[b]
		for i, j := 1, len(fl)-1; i < j; i, j = i+1, j-1 {
			fl[i], fl[j] = fl[j], fl[i]
		}
		return len(fl) - pr
	}
	return pr
}

// setMatch matches slot u across the edge recorded at (u,v), recursing
// into blossoms.
func (g *graph) setMatch(u, v int) {
	g.match[u] = g.ev[u][v]
	if u <= g.n {
		return
	}
	xr := g.flowerFrom[u][g.eu[u][v]]
	pr := g.getPr(u, xr)
	for i := 0; i < pr; i++ {
		g.setMatch(g.flower[u][i], g.flower[u][i^1])
	}
	g.setMatch(xr, v)
	// Rotate so the newly matched sub-blossom becomes the base.
	fl := g.flower[u]
	rotated := append(append([]int{}, fl[pr:]...), fl[:pr]...)
	g.flower[u] = rotated
}

func (g *graph) augment(u, v int) {
	for {
		xnv := g.st[g.match[u]]
		g.setMatch(u, v)
		if xnv == 0 {
			return
		}
		g.setMatch(xnv, g.st[g.pa[xnv]])
		u, v = g.st[g.pa[xnv]], xnv
	}
}

func (g *graph) getLCA(u, v int) int {
	g.visT++
	for u != 0 || v != 0 {
		if u != 0 {
			if g.vis[u] == g.visT {
				return u
			}
			g.vis[u] = g.visT
			u = g.st[g.match[u]]
			if u != 0 {
				u = g.st[g.pa[u]]
			}
		}
		u, v = v, u
	}
	return 0
}

func (g *graph) addBlossom(u, lca, v int) {
	b := g.n + 1
	for b <= g.nx && g.st[b] != 0 {
		b++
	}
	if b > g.nx {
		g.nx++
	}
	g.lab[b] = 0
	g.side[b] = 0
	g.match[b] = g.match[lca]
	g.flower[b] = g.flower[b][:0]
	g.flower[b] = append(g.flower[b], lca)
	for x := u; x != lca; {
		g.flower[b] = append(g.flower[b], x)
		y := g.st[g.match[x]]
		g.flower[b] = append(g.flower[b], y)
		g.qPush(y)
		x = g.st[g.pa[y]]
	}
	// Reverse everything after the base so the two arms are ordered
	// consistently around the cycle.
	fl := g.flower[b]
	for i, j := 1, len(fl)-1; i < j; i, j = i+1, j-1 {
		fl[i], fl[j] = fl[j], fl[i]
	}
	for x := v; x != lca; {
		g.flower[b] = append(g.flower[b], x)
		y := g.st[g.match[x]]
		g.flower[b] = append(g.flower[b], y)
		g.qPush(y)
		x = g.st[g.pa[y]]
	}
	g.setSt(b, b)
	for x := 1; x <= g.nx; x++ {
		g.w[b][x], g.w[x][b] = 0, 0
	}
	for x := 1; x <= g.n; x++ {
		g.flowerFrom[b][x] = 0
	}
	for _, xs := range g.flower[b] {
		for x := 1; x <= g.nx; x++ {
			if g.w[b][x] == 0 || g.eDelta(xs, x) < g.eDelta(b, x) {
				g.eu[b][x], g.ev[b][x], g.w[b][x] = g.eu[xs][x], g.ev[xs][x], g.w[xs][x]
				g.eu[x][b], g.ev[x][b], g.w[x][b] = g.eu[x][xs], g.ev[x][xs], g.w[x][xs]
			}
		}
		for x := 1; x <= g.n; x++ {
			if g.flowerFrom[xs][x] != 0 {
				g.flowerFrom[b][x] = xs
			}
		}
	}
	g.setSlack(b)
}

func (g *graph) expandBlossom(b int) {
	for _, i := range g.flower[b] {
		g.setSt(i, i)
	}
	xr := g.flowerFrom[b][g.eu[b][g.pa[b]]]
	pr := g.getPr(b, xr)
	for i := 0; i < pr; i += 2 {
		xs := g.flower[b][i]
		xns := g.flower[b][i+1]
		g.pa[xs] = g.eu[xns][xs]
		g.side[xs], g.side[xns] = 1, 0
		g.slack[xs] = 0
		g.setSlack(xns)
		g.qPush(xns)
	}
	g.side[xr] = 1
	g.pa[xr] = g.pa[b]
	for i := pr + 1; i < len(g.flower[b]); i++ {
		xs := g.flower[b][i]
		g.side[xs] = -1
		g.setSlack(xs)
	}
	g.st[b] = 0
}

// onFoundEdge processes a tight edge between real endpoints (u0, v0); it
// reports whether an augmenting path was found and applied.
func (g *graph) onFoundEdge(u0, v0 int) bool {
	u, v := g.st[u0], g.st[v0]
	switch g.side[v] {
	case -1:
		g.pa[v] = u0
		g.side[v] = 1
		nu := g.st[g.match[v]]
		g.slack[v], g.slack[nu] = 0, 0
		g.side[nu] = 0
		g.qPush(nu)
	case 0:
		lca := g.getLCA(u, v)
		if lca == 0 {
			g.augment(u, v)
			g.augment(v, u)
			return true
		}
		g.addBlossom(u, lca, v)
	}
	return false
}

// phase runs one augmentation phase; it reports whether a new matched
// edge was added (false means the matching is maximum).
func (g *graph) phase() bool {
	for x := 1; x <= g.nx; x++ {
		g.side[x] = -1
		g.slack[x] = 0
	}
	g.q = g.q[:0]
	for x := 1; x <= g.nx; x++ {
		if g.st[x] == x && g.match[x] == 0 {
			g.pa[x] = 0
			g.side[x] = 0
			g.qPush(x)
		}
	}
	if len(g.q) == 0 {
		return false
	}
	for {
		for len(g.q) > 0 {
			u := g.q[0]
			g.q = g.q[1:]
			if g.side[g.st[u]] == 1 {
				continue
			}
			for v := 1; v <= g.n; v++ {
				if g.w[u][v] > 0 && g.st[u] != g.st[v] {
					if g.eDelta(u, v) == 0 {
						if g.onFoundEdge(u, v) {
							return true
						}
					} else {
						g.updateSlack(u, g.st[v])
					}
				}
			}
		}
		d := infinite
		for b := g.n + 1; b <= g.nx; b++ {
			if g.st[b] == b && g.side[b] == 1 {
				if g.lab[b]/2 < d {
					d = g.lab[b] / 2
				}
			}
		}
		for x := 1; x <= g.nx; x++ {
			if g.st[x] == x && g.slack[x] != 0 {
				switch g.side[x] {
				case -1:
					if del := g.eDelta(g.slack[x], x); del < d {
						d = del
					}
				case 0:
					if del := g.eDelta(g.slack[x], x) / 2; del < d {
						d = del
					}
				}
			}
		}
		for u := 1; u <= g.n; u++ {
			switch g.side[g.st[u]] {
			case 0:
				if g.lab[u] <= d {
					return false
				}
				g.lab[u] -= d
			case 1:
				g.lab[u] += d
			}
		}
		for b := g.n + 1; b <= g.nx; b++ {
			if g.st[b] == b {
				switch g.side[b] {
				case 0:
					g.lab[b] += 2 * d
				case 1:
					g.lab[b] -= 2 * d
				}
			}
		}
		g.q = g.q[:0]
		for x := 1; x <= g.nx; x++ {
			if g.st[x] == x && g.slack[x] != 0 && g.st[g.slack[x]] != x && g.eDelta(g.slack[x], x) == 0 {
				if g.onFoundEdge(g.slack[x], x) {
					return true
				}
			}
		}
		for b := g.n + 1; b <= g.nx; b++ {
			if g.st[b] == b && g.side[b] == 1 && g.lab[b] == 0 {
				g.expandBlossom(b)
			}
		}
	}
}
