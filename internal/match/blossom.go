// Package match implements exact maximum-weight matching in general
// graphs via the blossom algorithm (Edmonds' primal-dual method in the
// O(n³) formulation), plus a minimum-weight perfect-matching wrapper.
//
// The NISQ+ paper compares its approximate SFQ decoder against the
// minimum-weight perfect-matching (MWPM) surface-code decoder of Fowler
// et al.; this package is that baseline's combinatorial core, built from
// scratch on the standard dual-variable formulation: labels on vertices
// and blossoms, alternating trees grown from free vertices, blossom
// shrinking at odd cycles, and dual adjustments when the trees get stuck.
//
// Two entry points are provided. The package-level functions
// (MaxWeightMatching, MinWeightPerfectMatching) allocate fresh working
// state per call and are convenient for one-off instances. The Matcher
// type owns reusable working state so steady-state decode loops solve
// instance after instance without allocating; the zero-allocation MWPM
// decode path (internal/decodepool) keeps one Matcher per scratch.
package match

// Infinite is the sentinel slack used during dual adjustment.
const infinite = int64(1) << 60

// graph carries the working state of one matching computation.
// Vertices are 1-indexed; indices above n denote shrunken blossoms.
// The arrays are sized for `slots` vertex slots and reused across
// instances by Matcher; init re-establishes the exact state a freshly
// allocated graph would have, so reuse never changes results.
type graph struct {
	n     int // number of real vertices
	nx    int // current number of vertex slots in use (incl. blossoms)
	slots int // allocated vertex slots (2·n+1 for the largest n seen)

	// The pairwise tables are flat with stride `slots` (w[u*slots+v]):
	// one contiguous array per table keeps the eDelta hot loop free of
	// the pointer chase a [][]T layout would pay on every access.
	w     []int64 // edge weight between real-or-blossom slots
	eu    []int   // real endpoint on u's side of edge (u,v)
	ev    []int   // real endpoint on v's side
	lab   []int64 // dual labels
	match []int   // match[u]: real endpoint matched to u (0 = free)
	slack []int   // slack[x]: real vertex with the tightest edge into x
	st    []int   // st[x]: the top-level blossom containing x
	pa    []int   // pa[x]: parent edge endpoint in the alternating tree
	side  []int8  // side[x]: -1 unvisited, 0 outer, 1 inner
	vis   []int   // visit stamps for LCA search
	visT  int

	flowerFrom []int   // flowerFrom[b*slots+x]: sub-blossom of b containing real x
	flower     [][]int // blossom cycles

	q  []int // BFS queue of real vertices
	qh int   // queue head: q[qh:] is pending (popping must not reslice q)
}

// Matcher owns reusable blossom working state. The zero value is ready
// to use; a Matcher must not be used from two goroutines at once. After
// the first solve at a given size, subsequent solves at the same or
// smaller size perform no heap allocation.
type Matcher struct {
	g    graph
	mate []int
	flip []int64 // min-weight wrapper's flipped-weight buffer
}

// NewMatcher returns an empty reusable matcher.
func NewMatcher() *Matcher { return &Matcher{} }

// MaxWeight computes a maximum-weight matching of the complete graph on
// n vertices with the given flat symmetric weight matrix: w[u*n+v] is
// the weight between vertices u and v (0-indexed; weights must be
// non-negative, and zero-weight pairs are treated as absent edges). It
// returns mate, where mate[u] is u's partner or -1, and the total
// matched weight. The returned slice is owned by the Matcher and valid
// only until the next solve.
func (m *Matcher) MaxWeight(n int, w []int64) (mate []int, total int64) {
	if cap(m.mate) < n {
		m.mate = make([]int, n)
	}
	mate = m.mate[:n]
	if n == 0 {
		return mate, 0
	}
	g := &m.g
	g.init(n, w)
	for g.phase() {
	}
	for u := 1; u <= n; u++ {
		if g.match[u] != 0 {
			mate[u-1] = g.match[u] - 1
			if g.match[u] < u {
				total += g.w[u*g.slots+g.match[u]] / 2
			}
		} else {
			mate[u-1] = -1
		}
	}
	return mate, total
}

// MinWeightPerfect computes a minimum-weight perfect matching of the
// complete graph on an even number of vertices with the given flat
// symmetric weight matrix (see MaxWeight). It returns mate and the
// total weight; the returned slice is owned by the Matcher and valid
// only until the next solve.
func (m *Matcher) MinWeightPerfect(n int, w []int64) (mate []int, total int64) {
	if n%2 != 0 {
		panic("match: perfect matching requires an even vertex count")
	}
	if n == 0 {
		return m.mate[:0], 0
	}
	var wMax int64
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if x := w[u*n+v]; x > wMax {
				wMax = x
			}
		}
	}
	if cap(m.flip) < n*n {
		m.flip = make([]int64, n*n)
	}
	flip := m.flip[:n*n]
	// Flip weights so that minimum becomes maximum; the +1 keeps every
	// edge strictly positive, which makes the maximum-weight matching
	// perfect on a complete graph.
	for u := 0; u < n; u++ {
		flip[u*n+u] = 0
		for v := u + 1; v < n; v++ {
			f := wMax - w[u*n+v] + 1
			flip[u*n+v], flip[v*n+u] = f, f
		}
	}
	mate, _ = m.MaxWeight(n, flip)
	for u, v := range mate {
		if v < 0 {
			panic("match: perfect matching not found on complete graph")
		}
		if v > u {
			total += w[u*n+v]
		}
	}
	return mate, total
}

// MaxWeightMatching computes a maximum-weight matching of the complete
// graph on n vertices with the given symmetric weight matrix (0-indexed;
// weights must be non-negative, and zero-weight pairs are treated as
// absent edges). It returns mate, where mate[u] is u's partner or -1,
// and the total matched weight.
func MaxWeightMatching(n int, weight func(u, v int) int64) (mate []int, total int64) {
	if n == 0 {
		return nil, 0
	}
	return NewMatcher().MaxWeight(n, flatten(n, weight))
}

// MinWeightPerfectMatching computes a minimum-weight perfect matching of
// the complete graph on an even number of vertices. It returns mate and
// the total weight. Weights may be any non-negative values.
func MinWeightPerfectMatching(n int, weight func(u, v int) int64) (mate []int, total int64) {
	if n%2 != 0 {
		panic("match: perfect matching requires an even vertex count")
	}
	if n == 0 {
		return nil, 0
	}
	return NewMatcher().MinWeightPerfect(n, flatten(n, weight))
}

// flatten materializes a weight function as the flat symmetric matrix
// the Matcher consumes.
func flatten(n int, weight func(u, v int) int64) []int64 {
	w := make([]int64, n*n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			x := weight(u, v)
			w[u*n+v], w[v*n+u] = x, x
		}
	}
	return w
}

// grow ensures the graph owns at least `slots` vertex slots, allocating
// fresh arrays when the previous instance was smaller.
func (g *graph) grow(slots int) {
	if slots <= g.slots {
		return
	}
	g.slots = slots
	g.w = make([]int64, slots*slots)
	g.eu = make([]int, slots*slots)
	g.ev = make([]int, slots*slots)
	g.flowerFrom = make([]int, slots*slots)
	g.lab = make([]int64, slots)
	g.match = make([]int, slots)
	g.slack = make([]int, slots)
	g.st = make([]int, slots)
	g.pa = make([]int, slots)
	g.side = make([]int8, slots)
	g.vis = make([]int, slots)
	g.flower = make([][]int, slots)
}

// init re-establishes the exact state of a freshly allocated graph for
// an n-vertex instance with flat weights w (w[u*n+v], 0-indexed).
func (g *graph) init(n int, w []int64) {
	slots := 2*n + 1
	g.grow(slots)
	g.n, g.nx = n, n
	g.visT = 0
	// The stride stays g.slots (the high-water size). The pairwise
	// tables need no bulk clearing: the real-vertex region is fully
	// rewritten below, and blossom slots re-initialize their own rows
	// and columns in addBlossom before any read. The one exception is
	// flowerFrom's real rows — only their diagonal is written here, but
	// addBlossom tests arbitrary real cells against zero, so stale
	// entries from a previous (larger) instance must be wiped.
	s := g.slots
	for i := 0; i < slots; i++ {
		g.flower[i] = g.flower[i][:0]
	}
	clear(g.lab[:slots])
	clear(g.match[:slots])
	clear(g.slack[:slots])
	clear(g.st[:slots])
	clear(g.pa[:slots])
	clear(g.side[:slots])
	clear(g.vis[:slots])
	g.q, g.qh = g.q[:0], 0

	var wMax int64
	for u := 1; u <= n; u++ {
		g.st[u] = u
		clear(g.flowerFrom[u*s+1 : u*s+n+1])
		g.flowerFrom[u*s+u] = u
		g.w[u*s+u] = 0
		for v := 1; v <= n; v++ {
			g.eu[u*s+v], g.ev[u*s+v] = u, v
			if u != v {
				// Doubled weights keep every dual adjustment integral.
				g.w[u*s+v] = 2 * w[(u-1)*n+(v-1)]
				if g.w[u*s+v] > wMax {
					wMax = g.w[u*s+v]
				}
			}
		}
	}
	for u := 1; u <= n; u++ {
		g.lab[u] = wMax / 2
	}
}

// eDelta is the dual slack of the edge between real vertices u and v as
// recorded in slot pair (u,v).
func (g *graph) eDelta(u, v int) int64 {
	k := u*g.slots + v
	return g.lab[g.eu[k]] + g.lab[g.ev[k]] - g.w[g.eu[k]*g.slots+g.ev[k]]
}

func (g *graph) updateSlack(u, x int) {
	sx := g.slack[x]
	if sx == 0 {
		g.slack[x] = u
		return
	}
	if x <= g.n {
		// Real slot: eu/ev are the identity (only init writes real-real
		// cells), so both deltas reduce to lab-w with lab[x] cancelling.
		if g.lab[u]-g.w[u*g.slots+x] < g.lab[sx]-g.w[sx*g.slots+x] {
			g.slack[x] = u
		}
		return
	}
	if g.eDelta(u, x) < g.eDelta(sx, x) {
		g.slack[x] = u
	}
}

// slackDelta is eDelta(slack[x], x) with the real-slot shortcut.
func (g *graph) slackDelta(x int) int64 {
	sx := g.slack[x]
	if x <= g.n {
		return g.lab[sx] + g.lab[x] - g.w[sx*g.slots+x]
	}
	return g.eDelta(sx, x)
}

func (g *graph) setSlack(x int) {
	g.slack[x] = 0
	for u := 1; u <= g.n; u++ {
		if g.w[u*g.slots+x] > 0 && g.st[u] != x && g.side[g.st[u]] == 0 {
			g.updateSlack(u, x)
		}
	}
}

func (g *graph) qPush(x int) {
	if x <= g.n {
		g.q = append(g.q, x)
		return
	}
	for _, i := range g.flower[x] {
		g.qPush(i)
	}
}

func (g *graph) setSt(x, b int) {
	g.st[x] = b
	if x > g.n {
		for _, i := range g.flower[x] {
			g.setSt(i, b)
		}
	}
}

// getPr orients blossom b's cycle so that sub-blossom xr sits at an even
// position and returns that position.
func (g *graph) getPr(b, xr int) int {
	pr := 0
	for i, f := range g.flower[b] {
		if f == xr {
			pr = i
			break
		}
	}
	if pr%2 == 1 {
		// Reverse the cycle (keeping the base fixed) to make pr even.
		fl := g.flower[b]
		reverse(fl[1:])
		return len(fl) - pr
	}
	return pr
}

// reverse flips a slice segment in place.
func reverse(s []int) {
	for i, j := 0, len(s)-1; i < j; i, j = i+1, j-1 {
		s[i], s[j] = s[j], s[i]
	}
}

// setMatch matches slot u across the edge recorded at (u,v), recursing
// into blossoms.
func (g *graph) setMatch(u, v int) {
	k := u*g.slots + v
	g.match[u] = g.ev[k]
	if u <= g.n {
		return
	}
	xr := g.flowerFrom[u*g.slots+g.eu[k]]
	pr := g.getPr(u, xr)
	for i := 0; i < pr; i++ {
		g.setMatch(g.flower[u][i], g.flower[u][i^1])
	}
	g.setMatch(xr, v)
	// Rotate in place so the newly matched sub-blossom becomes the base:
	// the cycle fl[pr:] + fl[:pr] via three reversals.
	fl := g.flower[u]
	reverse(fl[:pr])
	reverse(fl[pr:])
	reverse(fl)
}

func (g *graph) augment(u, v int) {
	for {
		xnv := g.st[g.match[u]]
		g.setMatch(u, v)
		if xnv == 0 {
			return
		}
		g.setMatch(xnv, g.st[g.pa[xnv]])
		u, v = g.st[g.pa[xnv]], xnv
	}
}

func (g *graph) getLCA(u, v int) int {
	g.visT++
	for u != 0 || v != 0 {
		if u != 0 {
			if g.vis[u] == g.visT {
				return u
			}
			g.vis[u] = g.visT
			u = g.st[g.match[u]]
			if u != 0 {
				u = g.st[g.pa[u]]
			}
		}
		u, v = v, u
	}
	return 0
}

func (g *graph) addBlossom(u, lca, v int) {
	b := g.n + 1
	for b <= g.nx && g.st[b] != 0 {
		b++
	}
	if b > g.nx {
		g.nx++
	}
	g.lab[b] = 0
	g.side[b] = 0
	g.match[b] = g.match[lca]
	g.flower[b] = g.flower[b][:0]
	g.flower[b] = append(g.flower[b], lca)
	for x := u; x != lca; {
		g.flower[b] = append(g.flower[b], x)
		y := g.st[g.match[x]]
		g.flower[b] = append(g.flower[b], y)
		g.qPush(y)
		x = g.st[g.pa[y]]
	}
	// Reverse everything after the base so the two arms are ordered
	// consistently around the cycle.
	reverse(g.flower[b][1:])
	for x := v; x != lca; {
		g.flower[b] = append(g.flower[b], x)
		y := g.st[g.match[x]]
		g.flower[b] = append(g.flower[b], y)
		g.qPush(y)
		x = g.st[g.pa[y]]
	}
	g.setSt(b, b)
	s := g.slots
	for x := 1; x <= g.nx; x++ {
		g.w[b*s+x], g.w[x*s+b] = 0, 0
	}
	for x := 1; x <= g.n; x++ {
		g.flowerFrom[b*s+x] = 0
	}
	for _, xs := range g.flower[b] {
		for x := 1; x <= g.nx; x++ {
			if g.w[b*s+x] == 0 || g.eDelta(xs, x) < g.eDelta(b, x) {
				g.eu[b*s+x], g.ev[b*s+x], g.w[b*s+x] = g.eu[xs*s+x], g.ev[xs*s+x], g.w[xs*s+x]
				g.eu[x*s+b], g.ev[x*s+b], g.w[x*s+b] = g.eu[x*s+xs], g.ev[x*s+xs], g.w[x*s+xs]
			}
		}
		for x := 1; x <= g.n; x++ {
			if g.flowerFrom[xs*s+x] != 0 {
				g.flowerFrom[b*s+x] = xs
			}
		}
	}
	g.setSlack(b)
}

func (g *graph) expandBlossom(b int) {
	for _, i := range g.flower[b] {
		g.setSt(i, i)
	}
	xr := g.flowerFrom[b*g.slots+g.eu[b*g.slots+g.pa[b]]]
	pr := g.getPr(b, xr)
	for i := 0; i < pr; i += 2 {
		xs := g.flower[b][i]
		xns := g.flower[b][i+1]
		g.pa[xs] = g.eu[xns*g.slots+xs]
		g.side[xs], g.side[xns] = 1, 0
		g.slack[xs] = 0
		g.setSlack(xns)
		g.qPush(xns)
	}
	g.side[xr] = 1
	g.pa[xr] = g.pa[b]
	for i := pr + 1; i < len(g.flower[b]); i++ {
		xs := g.flower[b][i]
		g.side[xs] = -1
		g.setSlack(xs)
	}
	g.st[b] = 0
}

// onFoundEdge processes a tight edge between real endpoints (u0, v0); it
// reports whether an augmenting path was found and applied.
func (g *graph) onFoundEdge(u0, v0 int) bool {
	u, v := g.st[u0], g.st[v0]
	switch g.side[v] {
	case -1:
		g.pa[v] = u0
		g.side[v] = 1
		nu := g.st[g.match[v]]
		g.slack[v], g.slack[nu] = 0, 0
		g.side[nu] = 0
		g.qPush(nu)
	case 0:
		lca := g.getLCA(u, v)
		if lca == 0 {
			g.augment(u, v)
			g.augment(v, u)
			return true
		}
		g.addBlossom(u, lca, v)
	}
	return false
}

// phase runs one augmentation phase; it reports whether a new matched
// edge was added (false means the matching is maximum).
func (g *graph) phase() bool {
	for x := 1; x <= g.nx; x++ {
		g.side[x] = -1
		g.slack[x] = 0
	}
	g.q, g.qh = g.q[:0], 0
	for x := 1; x <= g.nx; x++ {
		if g.st[x] == x && g.match[x] == 0 {
			g.pa[x] = 0
			g.side[x] = 0
			g.qPush(x)
		}
	}
	if len(g.q) == 0 {
		return false
	}
	for {
		for g.qh < len(g.q) {
			u := g.q[g.qh]
			g.qh++
			if g.side[g.st[u]] == 1 {
				continue
			}
			// Real-real cells keep eu=u, ev=v forever (only init writes
			// them), so eDelta reduces to lab[u]+lab[v]-w here — the
			// indirection-free form keeps this O(n³) core scan cheap.
			row := g.w[u*g.slots : u*g.slots+g.n+1]
			labU := g.lab[u]
			for v := 1; v <= g.n; v++ {
				if row[v] > 0 && g.st[u] != g.st[v] {
					if labU+g.lab[v]-row[v] == 0 {
						if g.onFoundEdge(u, v) {
							return true
						}
					} else {
						g.updateSlack(u, g.st[v])
					}
				}
			}
		}
		d := infinite
		for b := g.n + 1; b <= g.nx; b++ {
			if g.st[b] == b && g.side[b] == 1 {
				if g.lab[b]/2 < d {
					d = g.lab[b] / 2
				}
			}
		}
		for x := 1; x <= g.nx; x++ {
			if g.st[x] == x && g.slack[x] != 0 {
				switch g.side[x] {
				case -1:
					if del := g.slackDelta(x); del < d {
						d = del
					}
				case 0:
					if del := g.slackDelta(x) / 2; del < d {
						d = del
					}
				}
			}
		}
		for u := 1; u <= g.n; u++ {
			switch g.side[g.st[u]] {
			case 0:
				if g.lab[u] <= d {
					return false
				}
				g.lab[u] -= d
			case 1:
				g.lab[u] += d
			}
		}
		for b := g.n + 1; b <= g.nx; b++ {
			if g.st[b] == b {
				switch g.side[b] {
				case 0:
					g.lab[b] += 2 * d
				case 1:
					g.lab[b] -= 2 * d
				}
			}
		}
		g.q, g.qh = g.q[:0], 0
		for x := 1; x <= g.nx; x++ {
			if g.st[x] == x && g.slack[x] != 0 && g.st[g.slack[x]] != x && g.slackDelta(x) == 0 {
				if g.onFoundEdge(g.slack[x], x) {
					return true
				}
			}
		}
		for b := g.n + 1; b <= g.nx; b++ {
			if g.st[b] == b && g.side[b] == 1 && g.lab[b] == 0 {
				g.expandBlossom(b)
			}
		}
	}
}
