// Package spacetime extends the paper's purely spatial (2D) decoding to
// the phenomenological noise model: syndrome measurements themselves
// flip with probability q, so decoding matches *detection events* —
// changes between consecutive syndrome rounds — in a 3D space-time
// graph whose time-like edges are measurement errors and whose
// space-like edges are data errors.
//
// The NISQ+ paper evaluates with perfect extraction (its decoder is
// per-round); this package is the repository's "future work" extension
// showing how the same matching machinery (greedy or exact blossom)
// lifts to repeated noisy measurement. Blocks of R noisy rounds are
// terminated by one perfect round, as is standard for lifetime studies.
package spacetime

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/lattice"
	"repro/internal/match"
	"repro/internal/mc"
	"repro/internal/noise"
	"repro/internal/pauli"
)

// Node is one detection event: check index Check fired at round Round.
type Node struct {
	Check int
	Round int
}

// Method selects the matching algorithm.
type Method uint8

const (
	// Greedy sorts candidate pairs by distance and matches greedily —
	// the NISQ+ algorithm lifted to 3D.
	Greedy Method = iota
	// Exact solves the space-time matching optimally with the blossom
	// algorithm.
	Exact
)

// String names the method.
func (m Method) String() string {
	if m == Exact {
		return "exact"
	}
	return "greedy"
}

// Decoder matches detection events in space-time.
type Decoder struct {
	g      *lattice.Graph
	method Method
}

// NewDecoder builds a space-time decoder over one matching graph.
func NewDecoder(g *lattice.Graph, m Method) *Decoder {
	return &Decoder{g: g, method: m}
}

// dist is the space-time metric: spatial matching-graph distance plus
// time separation.
func (d *Decoder) dist(a, b Node) int {
	dt := a.Round - b.Round
	if dt < 0 {
		dt = -dt
	}
	return d.g.Dist(a.Check, b.Check) + dt
}

// Match pairs the detection events; events may also match a spatial
// boundary at their spatial boundary distance.
//
// The returned correction lists the data qubits to flip: the spatial
// projection of every matched path. Time-like segments are measurement
// errors and need no data correction.
func (d *Decoder) Match(events []Node) (pairs [][2]int, boundary []int) {
	n := len(events)
	if n == 0 {
		return nil, nil
	}
	switch d.method {
	case Exact:
		weight := func(u, v int) int64 {
			switch {
			case u < n && v < n:
				return int64(d.dist(events[u], events[v]))
			case u >= n && v >= n:
				return 0
			case u < n:
				return int64(d.g.BoundaryDist(events[u].Check))
			default:
				return int64(d.g.BoundaryDist(events[v].Check))
			}
		}
		mate, _ := match.MinWeightPerfectMatching(2*n, weight)
		for u := 0; u < n; u++ {
			if mate[u] >= n {
				boundary = append(boundary, u)
			} else if mate[u] > u {
				pairs = append(pairs, [2]int{u, mate[u]})
			}
		}
		return pairs, boundary
	default:
		type edge struct {
			w, i, j int // j == -1 marks a boundary edge
		}
		var edges []edge
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				edges = append(edges, edge{d.dist(events[i], events[j]), i, j})
			}
			edges = append(edges, edge{d.g.BoundaryDist(events[i].Check), i, -1})
		}
		sort.Slice(edges, func(x, y int) bool {
			if edges[x].w != edges[y].w {
				return edges[x].w < edges[y].w
			}
			if (edges[x].j == -1) != (edges[y].j == -1) {
				return edges[y].j == -1
			}
			if edges[x].i != edges[y].i {
				return edges[x].i < edges[y].i
			}
			return edges[x].j < edges[y].j
		})
		matched := make([]bool, n)
		for _, e := range edges {
			if matched[e.i] {
				continue
			}
			if e.j == -1 {
				matched[e.i] = true
				boundary = append(boundary, e.i)
				continue
			}
			if matched[e.j] {
				continue
			}
			matched[e.i], matched[e.j] = true, true
			pairs = append(pairs, [2]int{e.i, e.j})
		}
		return pairs, boundary
	}
}

// Correction converts a matching over events into the data qubits to
// flip (the spatial projection of each path).
func (d *Decoder) Correction(events []Node, pairs [][2]int, boundary []int) []int {
	var qubits []int
	for _, p := range pairs {
		qubits = append(qubits, d.g.PathQubits(events[p[0]].Check, events[p[1]].Check)...)
	}
	for _, i := range boundary {
		qubits = append(qubits, d.g.BoundaryPathQubits(events[i].Check)...)
	}
	return qubits
}

// Config describes a phenomenological lifetime experiment.
type Config struct {
	Distance int
	P        float64 // data error rate per round
	Q        float64 // measurement flip rate per round
	Rounds   int     // noisy rounds per block (a perfect round closes each block)
	Method   Method
	Seed     int64
}

// Result summarizes a run.
type Result struct {
	Blocks        int
	Rounds        int // noisy rounds simulated (Blocks × Rounds)
	LogicalErrors int
	PL            float64 // logical errors per block
}

// Simulator runs repeated noisy-measurement blocks against the
// space-time decoder (Z errors / X checks, matching the paper's
// headline dephasing evaluation).
type Simulator struct {
	cfg  Config
	l    *lattice.Lattice
	g    *lattice.Graph
	dec  *Decoder
	rng  *rand.Rand
	ch   noise.Dephasing
	mf   noise.MeasureFlip
	data []int
	res  *pauli.Frame
	cut  []int
}

// NewSimulator validates the configuration and builds the simulator.
func NewSimulator(cfg Config) (*Simulator, error) {
	if cfg.Rounds < 1 {
		return nil, fmt.Errorf("spacetime: need >= 1 round per block, got %d", cfg.Rounds)
	}
	l, err := lattice.New(cfg.Distance)
	if err != nil {
		return nil, err
	}
	ch, err := noise.NewDephasing(cfg.P)
	if err != nil {
		return nil, err
	}
	mf, err := noise.NewMeasureFlip(cfg.Q)
	if err != nil {
		return nil, err
	}
	g := l.MatchingGraph(lattice.ZErrors)
	s := &Simulator{
		cfg: cfg,
		l:   l,
		g:   g,
		dec: NewDecoder(g, cfg.Method),
		rng: noise.NewRand(cfg.Seed),
		ch:  ch,
		mf:  mf,
		res: pauli.NewFrame(l.NumQubits()),
		cut: l.LogicalCutSupport(lattice.ZErrors),
	}
	for _, site := range l.DataSites() {
		s.data = append(s.data, l.QubitIndex(site))
	}
	return s, nil
}

// SetRand swaps the simulator's randomness source. Engine shards call
// this before every trial with the trial's private stream.
func (s *Simulator) SetRand(rng *rand.Rand) { s.rng = rng }

// Reset clears the residual error frame, so the next block starts from
// the code space independent of earlier blocks.
func (s *Simulator) Reset() { s.res.Clear() }

// Run simulates the given number of blocks.
func (s *Simulator) Run(blocks int) (Result, error) {
	var out Result
	for b := 0; b < blocks; b++ {
		flipped, err := s.runBlock()
		if err != nil {
			return out, err
		}
		out.Blocks++
		out.Rounds += s.cfg.Rounds
		if flipped {
			out.LogicalErrors++
		}
	}
	if out.Blocks > 0 {
		out.PL = float64(out.LogicalErrors) / float64(out.Blocks)
	}
	return out, nil
}

// blockShard adapts a private simulator to the Monte-Carlo engine: one
// trial is one block from a clean frame.
type blockShard struct {
	sim *Simulator
}

// Trial implements mc.Shard.
func (sh *blockShard) Trial(rng *rand.Rand, _ int) (mc.Outcome, error) {
	sh.sim.Reset()
	sh.sim.SetRand(rng)
	flipped, err := sh.sim.runBlock()
	if err != nil {
		return mc.Outcome{}, err
	}
	return mc.Outcome{Failed: flipped}, nil
}

// pointID keys a config's random streams by its physical parameters,
// so a point's result is invariant under sweep reordering.
func (cfg Config) pointID() int64 {
	return mc.DeriveID(uint64(cfg.Distance), math.Float64bits(cfg.P),
		math.Float64bits(cfg.Q), uint64(cfg.Rounds), uint64(cfg.Method))
}

// Sweep runs one phenomenological lifetime experiment per config on
// the sharded Monte-Carlo engine: blocks of every point run in
// parallel, and every block's randomness is a pure function of
// (rootSeed, config parameters, block index), so results are
// bit-identical regardless of workers. Config.Seed fields are ignored;
// rootSeed drives all streams. Results are returned in config order.
func Sweep(ctx context.Context, cfgs []Config, blocks int, rootSeed int64, workers int) ([]Result, error) {
	specs := make([]mc.PointSpec, len(cfgs))
	for i, cfg := range cfgs {
		cfg := cfg
		specs[i] = mc.PointSpec{
			ID:     cfg.pointID(),
			Trials: blocks,
			NewShard: func() (mc.Shard, error) {
				sim, err := NewSimulator(cfg)
				if err != nil {
					return nil, err
				}
				return &blockShard{sim: sim}, nil
			},
		}
	}
	tallies, err := mc.Run(ctx, mc.Config{RootSeed: rootSeed, Workers: workers}, specs)
	if err != nil {
		return nil, err
	}
	results := make([]Result, len(tallies))
	for i, t := range tallies {
		results[i] = Result{
			Blocks:        t.Trials,
			Rounds:        t.Trials * cfgs[i].Rounds,
			LogicalErrors: t.Failures,
		}
		if t.Trials > 0 {
			results[i].PL = float64(t.Failures) / float64(t.Trials)
		}
	}
	return results, nil
}

// runBlock executes R noisy rounds plus a perfect closing round, decodes
// the detection events, applies the correction, and reports whether the
// block flipped the logical state.
func (s *Simulator) runBlock() (bool, error) {
	prev := make([]bool, s.g.NumChecks()) // block opens syndrome-clean
	var events []Node
	for r := 0; r < s.cfg.Rounds; r++ {
		s.ch.Sample(s.rng, s.res, s.data)
		syn := s.g.Syndrome(s.res)
		s.mf.Flip(s.rng, syn)
		for i := range syn {
			if syn[i] != prev[i] {
				events = append(events, Node{Check: i, Round: r})
			}
		}
		prev = syn
	}
	// Closing perfect round.
	final := s.g.Syndrome(s.res)
	for i := range final {
		if final[i] != prev[i] {
			events = append(events, Node{Check: i, Round: s.cfg.Rounds})
		}
	}
	pairs, boundary := s.dec.Match(events)
	for _, q := range s.dec.Correction(events, pairs, boundary) {
		s.res.Apply(q, pauli.Z)
	}
	for i, hot := range s.g.Syndrome(s.res) {
		if hot {
			return false, fmt.Errorf("spacetime: residual check %d hot after block correction", i)
		}
	}
	if s.res.ParityZ(s.cut) == 1 {
		for _, q := range s.l.LogicalSupport(lattice.ZErrors) {
			s.res.Apply(q, pauli.Z)
		}
		return true, nil
	}
	return false, nil
}
