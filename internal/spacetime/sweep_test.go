package spacetime

import (
	"context"
	"testing"
)

// Sweep results are bit-identical for any worker count and invariant
// under reordering of the config list.
func TestSweepWorkerInvariance(t *testing.T) {
	cfgs := []Config{
		{Distance: 3, P: 0.02, Q: 0.01, Rounds: 3, Method: Greedy},
		{Distance: 3, P: 0.05, Q: 0.02, Rounds: 3, Method: Greedy},
	}
	run := func(workers int, cs []Config) []Result {
		res, err := Sweep(context.Background(), cs, 300, 17, workers)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	ref := run(1, cfgs)
	for _, w := range []int{2, 8} {
		got := run(w, cfgs)
		for i := range ref {
			if got[i] != ref[i] {
				t.Errorf("workers=%d: point %d = %+v, want %+v", w, i, got[i], ref[i])
			}
		}
	}
	swapped := run(4, []Config{cfgs[1], cfgs[0]})
	if swapped[0] != ref[1] || swapped[1] != ref[0] {
		t.Errorf("reordered sweep changed results: %+v vs %+v", swapped, ref)
	}
}
