package spacetime

import (
	"testing"

	"repro/internal/lattice"
)

func TestMethodString(t *testing.T) {
	if Greedy.String() != "greedy" || Exact.String() != "exact" {
		t.Error("method names wrong")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := NewSimulator(Config{Distance: 3, P: 0.01, Q: 0.01, Rounds: 0}); err == nil {
		t.Error("zero rounds accepted")
	}
	if _, err := NewSimulator(Config{Distance: 4, P: 0.01, Q: 0.01, Rounds: 3}); err == nil {
		t.Error("even distance accepted")
	}
	if _, err := NewSimulator(Config{Distance: 3, P: 2, Q: 0.01, Rounds: 3}); err == nil {
		t.Error("bad p accepted")
	}
	if _, err := NewSimulator(Config{Distance: 3, P: 0.01, Q: -1, Rounds: 3}); err == nil {
		t.Error("bad q accepted")
	}
}

func TestSpaceTimeMetric(t *testing.T) {
	l := lattice.MustNew(5)
	g := l.MatchingGraph(lattice.ZErrors)
	d := NewDecoder(g, Greedy)
	i, _ := g.CheckIndex(lattice.Site{Row: 0, Col: 1})
	j, _ := g.CheckIndex(lattice.Site{Row: 0, Col: 5})
	if got := d.dist(Node{i, 0}, Node{j, 0}); got != 2 {
		t.Errorf("spatial dist = %d, want 2", got)
	}
	if got := d.dist(Node{i, 0}, Node{i, 3}); got != 3 {
		t.Errorf("time dist = %d, want 3", got)
	}
	if got := d.dist(Node{i, 4}, Node{j, 1}); got != 5 {
		t.Errorf("mixed dist = %d, want 5", got)
	}
}

// A pure measurement error produces two time-adjacent events at the
// same check; both methods must pair them together (no data correction).
func TestMeasurementErrorMatchedInTime(t *testing.T) {
	l := lattice.MustNew(5)
	g := l.MatchingGraph(lattice.ZErrors)
	i, _ := g.CheckIndex(lattice.Site{Row: 2, Col: 3})
	events := []Node{{i, 1}, {i, 2}}
	for _, m := range []Method{Greedy, Exact} {
		d := NewDecoder(g, m)
		pairs, boundary := d.Match(events)
		if len(pairs) != 1 || len(boundary) != 0 {
			t.Fatalf("%v: pairs=%v boundary=%v", m, pairs, boundary)
		}
		if q := d.Correction(events, pairs, boundary); len(q) != 0 {
			t.Errorf("%v: time-like pair produced data correction %v", m, q)
		}
	}
}

// A data error produces two same-round events one apart; the correction
// must be that single data qubit.
func TestDataErrorMatchedInSpace(t *testing.T) {
	l := lattice.MustNew(5)
	g := l.MatchingGraph(lattice.ZErrors)
	i, _ := g.CheckIndex(lattice.Site{Row: 2, Col: 3})
	j, _ := g.CheckIndex(lattice.Site{Row: 2, Col: 5})
	events := []Node{{i, 0}, {j, 0}}
	for _, m := range []Method{Greedy, Exact} {
		d := NewDecoder(g, m)
		pairs, boundary := d.Match(events)
		if len(pairs) != 1 || len(boundary) != 0 {
			t.Fatalf("%v: pairs=%v boundary=%v", m, pairs, boundary)
		}
		q := d.Correction(events, pairs, boundary)
		if len(q) != 1 || q[0] != l.QubitIndex(lattice.Site{Row: 2, Col: 4}) {
			t.Errorf("%v: correction = %v", m, q)
		}
	}
}

func TestEmptyEvents(t *testing.T) {
	g := lattice.MustNew(3).MatchingGraph(lattice.ZErrors)
	for _, m := range []Method{Greedy, Exact} {
		d := NewDecoder(g, m)
		pairs, boundary := d.Match(nil)
		if pairs != nil || boundary != nil {
			t.Errorf("%v matched empty events", m)
		}
	}
}

// Lifetime smoke: runs are deterministic per seed, every block clears
// its syndrome (runBlock errors otherwise), and the logical error rate
// responds to the noise rates.
func TestLifetimeRuns(t *testing.T) {
	for _, m := range []Method{Greedy, Exact} {
		run := func(p, q float64, seed int64) Result {
			s, err := NewSimulator(Config{Distance: 3, P: p, Q: q, Rounds: 4, Method: m, Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			r, err := s.Run(300)
			if err != nil {
				t.Fatal(err)
			}
			return r
		}
		a := run(0.03, 0.03, 5)
		b := run(0.03, 0.03, 5)
		if a != b {
			t.Errorf("%v: nondeterministic: %+v vs %+v", m, a, b)
		}
		if a.Blocks != 300 || a.Rounds != 1200 {
			t.Errorf("%v: accounting wrong: %+v", m, a)
		}
		quiet := run(0.001, 0.001, 7)
		loud := run(0.08, 0.08, 7)
		if quiet.PL >= loud.PL {
			t.Errorf("%v: PL(quiet)=%v >= PL(loud)=%v", m, quiet.PL, loud.PL)
		}
	}
}

// With q = 0 and one round per block, space-time decoding degenerates to
// the paper's 2D decoding; exact matching must then suppress errors with
// distance below threshold.
func TestDegeneratesTo2D(t *testing.T) {
	pl := func(d int) float64 {
		s, err := NewSimulator(Config{Distance: d, P: 0.04, Q: 0, Rounds: 1, Method: Exact, Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		r, err := s.Run(8000)
		if err != nil {
			t.Fatal(err)
		}
		return r.PL
	}
	if p3, p5 := pl(3), pl(5); p5 >= p3 {
		t.Errorf("no suppression: PL(5)=%v >= PL(3)=%v", p5, p3)
	}
}

// Measurement noise must hurt: at fixed p, adding q raises PL.
func TestMeasurementNoiseHurts(t *testing.T) {
	run := func(q float64) float64 {
		s, err := NewSimulator(Config{Distance: 3, P: 0.02, Q: q, Rounds: 5, Method: Exact, Seed: 13})
		if err != nil {
			t.Fatal(err)
		}
		r, err := s.Run(2000)
		if err != nil {
			t.Fatal(err)
		}
		return r.PL
	}
	if clean, noisy := run(0), run(0.05); noisy <= clean {
		t.Errorf("PL(q=0.05)=%v <= PL(q=0)=%v", noisy, clean)
	}
}
