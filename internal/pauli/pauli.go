// Package pauli implements the single- and multi-qubit Pauli operator
// algebra used throughout the surface-code simulator.
//
// The surface code discretizes arbitrary physical errors into elements of
// the Pauli group {I, X, Y, Z}^n (see §II-C of the NISQ+ paper). This
// package provides the group operations (composition, commutation) and a
// compact Frame type that tracks the accumulated Pauli error on every
// qubit of a device across simulation cycles.
package pauli

import "strings"

// Op is a single-qubit Pauli operator. The zero value is the identity.
type Op uint8

// The four single-qubit Pauli operators. The encoding is chosen so that
// the X component is bit 0 and the Z component is bit 1, making
// composition a XOR and commutation a symplectic product.
const (
	I Op = 0 // identity
	X Op = 1 // bit flip
	Z Op = 2 // phase flip
	Y Op = 3 // combined bit and phase flip (X·Z up to phase)
)

// ParseOp converts one of the runes 'I', 'X', 'Y', 'Z' into an Op.
// It reports false for any other rune.
func ParseOp(r rune) (Op, bool) {
	switch r {
	case 'I', 'i':
		return I, true
	case 'X', 'x':
		return X, true
	case 'Y', 'y':
		return Y, true
	case 'Z', 'z':
		return Z, true
	}
	return I, false
}

// String returns the conventional letter for the operator.
func (p Op) String() string {
	switch p {
	case I:
		return "I"
	case X:
		return "X"
	case Z:
		return "Z"
	case Y:
		return "Y"
	}
	return "?"
}

// HasX reports whether the operator contains a bit-flip component
// (X or Y). Z-type stabilizers detect exactly these operators.
func (p Op) HasX() bool { return p&X != 0 }

// HasZ reports whether the operator contains a phase-flip component
// (Z or Y). X-type stabilizers detect exactly these operators.
func (p Op) HasZ() bool { return p&Z != 0 }

// Mul composes two Pauli operators, discarding the global phase.
// Composition is commutative up to phase, and phases are irrelevant for
// error tracking, so Mul(a, b) == Mul(b, a).
func Mul(a, b Op) Op { return a ^ b }

// Commutes reports whether the two operators commute. Distinct
// non-identity Paulis anticommute; everything commutes with itself and
// with the identity.
func Commutes(a, b Op) bool {
	if a == I || b == I || a == b {
		return true
	}
	return false
}

// Weight1 reports whether the operator is not the identity.
func Weight1(p Op) bool { return p != I }

// Frame is an n-qubit Pauli error frame: the accumulated Pauli operator
// acting on each qubit of a device. The zero-length Frame is valid and
// represents a zero-qubit system.
type Frame struct {
	ops []Op
}

// NewFrame returns an identity frame over n qubits.
func NewFrame(n int) *Frame {
	return &Frame{ops: make([]Op, n)}
}

// FromString builds a frame from a string of IXYZ letters, e.g. "IXZY".
// It reports false if any rune is not a Pauli letter.
func FromString(s string) (*Frame, bool) {
	f := NewFrame(len(s))
	for i, r := range s {
		op, ok := ParseOp(r)
		if !ok {
			return nil, false
		}
		f.ops[i] = op
	}
	return f, true
}

// Len returns the number of qubits the frame covers.
func (f *Frame) Len() int { return len(f.ops) }

// Get returns the operator acting on qubit q.
func (f *Frame) Get(q int) Op { return f.ops[q] }

// Set replaces the operator acting on qubit q.
func (f *Frame) Set(q int, p Op) { f.ops[q] = p }

// Apply composes p onto the operator already acting on qubit q.
func (f *Frame) Apply(q int, p Op) { f.ops[q] = Mul(f.ops[q], p) }

// ApplyFrame composes the entire frame g onto f. The two frames must
// cover the same number of qubits.
func (f *Frame) ApplyFrame(g *Frame) {
	for i, p := range g.ops {
		f.ops[i] = Mul(f.ops[i], p)
	}
}

// Clear resets every qubit to the identity.
func (f *Frame) Clear() {
	for i := range f.ops {
		f.ops[i] = I
	}
}

// Clone returns an independent copy of the frame.
func (f *Frame) Clone() *Frame {
	g := NewFrame(len(f.ops))
	copy(g.ops, f.ops)
	return g
}

// Weight returns the number of qubits with a non-identity operator.
func (f *Frame) Weight() int {
	w := 0
	for _, p := range f.ops {
		if p != I {
			w++
		}
	}
	return w
}

// IsIdentity reports whether every qubit carries the identity.
func (f *Frame) IsIdentity() bool { return f.Weight() == 0 }

// Equal reports whether two frames are identical operators.
func (f *Frame) Equal(g *Frame) bool {
	if len(f.ops) != len(g.ops) {
		return false
	}
	for i := range f.ops {
		if f.ops[i] != g.ops[i] {
			return false
		}
	}
	return true
}

// ParityZ returns the parity (0 or 1) of phase-flip components over the
// given qubit set: the measurement outcome an X-type stabilizer with that
// support would report.
func (f *Frame) ParityZ(qubits []int) int {
	par := 0
	for _, q := range qubits {
		if f.ops[q].HasZ() {
			par ^= 1
		}
	}
	return par
}

// ParityX returns the parity (0 or 1) of bit-flip components over the
// given qubit set: the measurement outcome a Z-type stabilizer with that
// support would report.
func (f *Frame) ParityX(qubits []int) int {
	par := 0
	for _, q := range qubits {
		if f.ops[q].HasX() {
			par ^= 1
		}
	}
	return par
}

// String renders the frame as a string of IXYZ letters.
func (f *Frame) String() string {
	var b strings.Builder
	b.Grow(len(f.ops))
	for _, p := range f.ops {
		b.WriteString(p.String())
	}
	return b.String()
}

// CommutesWith reports whether the frame, viewed as one n-qubit Pauli
// operator, commutes with g. Two Pauli products commute iff they
// anticommute on an even number of qubits.
func (f *Frame) CommutesWith(g *Frame) bool {
	anti := 0
	for i := range f.ops {
		if !Commutes(f.ops[i], g.ops[i]) {
			anti++
		}
	}
	return anti%2 == 0
}
