package pauli

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestOpString(t *testing.T) {
	cases := map[Op]string{I: "I", X: "X", Y: "Y", Z: "Z"}
	for op, want := range cases {
		if got := op.String(); got != want {
			t.Errorf("Op(%d).String() = %q, want %q", op, got, want)
		}
	}
	if got := Op(7).String(); got != "?" {
		t.Errorf("invalid op String() = %q, want ?", got)
	}
}

func TestParseOp(t *testing.T) {
	for _, r := range "IXYZixyz" {
		if _, ok := ParseOp(r); !ok {
			t.Errorf("ParseOp(%q) not ok", r)
		}
	}
	if _, ok := ParseOp('Q'); ok {
		t.Error("ParseOp('Q') unexpectedly ok")
	}
	if op, _ := ParseOp('y'); op != Y {
		t.Errorf("ParseOp('y') = %v, want Y", op)
	}
}

func TestMulTable(t *testing.T) {
	// The full 4x4 multiplication table of the Pauli group mod phase.
	want := map[[2]Op]Op{
		{I, I}: I, {I, X}: X, {I, Y}: Y, {I, Z}: Z,
		{X, I}: X, {X, X}: I, {X, Y}: Z, {X, Z}: Y,
		{Y, I}: Y, {Y, X}: Z, {Y, Y}: I, {Y, Z}: X,
		{Z, I}: Z, {Z, X}: Y, {Z, Y}: X, {Z, Z}: I,
	}
	for in, out := range want {
		if got := Mul(in[0], in[1]); got != out {
			t.Errorf("Mul(%v,%v) = %v, want %v", in[0], in[1], got, out)
		}
	}
}

func TestCommutes(t *testing.T) {
	ops := []Op{I, X, Y, Z}
	for _, a := range ops {
		for _, b := range ops {
			want := a == I || b == I || a == b
			if got := Commutes(a, b); got != want {
				t.Errorf("Commutes(%v,%v) = %v, want %v", a, b, got, want)
			}
		}
	}
}

func TestHasComponents(t *testing.T) {
	if I.HasX() || I.HasZ() {
		t.Error("identity has components")
	}
	if !X.HasX() || X.HasZ() {
		t.Error("X components wrong")
	}
	if Z.HasX() || !Z.HasZ() {
		t.Error("Z components wrong")
	}
	if !Y.HasX() || !Y.HasZ() {
		t.Error("Y components wrong")
	}
}

// Property: Mul is associative and commutative, with I as identity and
// every element self-inverse.
func TestMulGroupLaws(t *testing.T) {
	f := func(a, b, c uint8) bool {
		x, y, z := Op(a%4), Op(b%4), Op(c%4)
		if Mul(x, y) != Mul(y, x) {
			return false
		}
		if Mul(Mul(x, y), z) != Mul(x, Mul(y, z)) {
			return false
		}
		if Mul(x, I) != x || Mul(x, x) != I {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFrameBasics(t *testing.T) {
	f := NewFrame(5)
	if f.Len() != 5 || !f.IsIdentity() {
		t.Fatalf("new frame not identity: %v", f)
	}
	f.Set(2, Y)
	f.Apply(2, X) // Y*X = Z
	if f.Get(2) != Z {
		t.Errorf("Get(2) = %v, want Z", f.Get(2))
	}
	if f.Weight() != 1 {
		t.Errorf("Weight = %d, want 1", f.Weight())
	}
	f.Clear()
	if !f.IsIdentity() {
		t.Error("Clear did not reset frame")
	}
}

func TestFromString(t *testing.T) {
	f, ok := FromString("IXZY")
	if !ok {
		t.Fatal("FromString failed")
	}
	if f.String() != "IXZY" {
		t.Errorf("round trip = %q", f.String())
	}
	if _, ok := FromString("IXQ"); ok {
		t.Error("FromString accepted invalid letter")
	}
}

func TestApplyFrameIsGroupAction(t *testing.T) {
	a, _ := FromString("XXZI")
	b, _ := FromString("XYZZ")
	a.ApplyFrame(b)
	if a.String() != "IZIZ" {
		t.Errorf("ApplyFrame = %q, want IZIZ", a.String())
	}
}

func TestCloneIndependence(t *testing.T) {
	a, _ := FromString("XYZ")
	b := a.Clone()
	b.Set(0, I)
	if a.Get(0) != X {
		t.Error("Clone aliases original")
	}
	if !a.Equal(a.Clone()) {
		t.Error("Equal(clone) false")
	}
	if a.Equal(NewFrame(2)) {
		t.Error("Equal across lengths true")
	}
}

func TestParities(t *testing.T) {
	f, _ := FromString("ZXYI")
	// Z components on qubits 0 and 2.
	if got := f.ParityZ([]int{0, 1, 2, 3}); got != 0 {
		t.Errorf("ParityZ all = %d, want 0", got)
	}
	if got := f.ParityZ([]int{0, 1}); got != 1 {
		t.Errorf("ParityZ {0,1} = %d, want 1", got)
	}
	// X components on qubits 1 and 2.
	if got := f.ParityX([]int{1, 2}); got != 0 {
		t.Errorf("ParityX {1,2} = %d, want 0", got)
	}
	if got := f.ParityX([]int{2, 3}); got != 1 {
		t.Errorf("ParityX {2,3} = %d, want 1", got)
	}
}

// Property: frame-level commutation matches the parity of pointwise
// anticommutations, and each frame commutes with itself.
func TestCommutesWithProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	randFrame := func(n int) *Frame {
		f := NewFrame(n)
		for i := 0; i < n; i++ {
			f.Set(i, Op(rng.Intn(4)))
		}
		return f
	}
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(12)
		a, b := randFrame(n), randFrame(n)
		if !a.CommutesWith(a) {
			t.Fatalf("frame %v does not commute with itself", a)
		}
		if a.CommutesWith(b) != b.CommutesWith(a) {
			t.Fatalf("commutation not symmetric: %v vs %v", a, b)
		}
		// X-only frame vs Z-only frame: commute iff overlap even.
		xs, zs := NewFrame(n), NewFrame(n)
		overlap := 0
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				xs.Set(i, X)
			}
			if rng.Intn(2) == 0 {
				zs.Set(i, Z)
			}
			if xs.Get(i) == X && zs.Get(i) == Z {
				overlap++
			}
		}
		if xs.CommutesWith(zs) != (overlap%2 == 0) {
			t.Fatalf("X/Z commutation mismatch, overlap %d", overlap)
		}
	}
}

// Property: ParityZ is linear — the parity of a composed frame is the XOR
// of the parities. This is the syndrome-linearity property the surface
// code relies on.
func TestParityLinearity(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(16)
		a, b := NewFrame(n), NewFrame(n)
		for i := 0; i < n; i++ {
			a.Set(i, Op(rng.Intn(4)))
			b.Set(i, Op(rng.Intn(4)))
		}
		sup := []int{}
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				sup = append(sup, i)
			}
		}
		sum := a.Clone()
		sum.ApplyFrame(b)
		if sum.ParityZ(sup) != a.ParityZ(sup)^b.ParityZ(sup) {
			t.Fatalf("ParityZ not linear on %v + %v", a, b)
		}
		if sum.ParityX(sup) != a.ParityX(sup)^b.ParityX(sup) {
			t.Fatalf("ParityX not linear on %v + %v", a, b)
		}
	}
}
