package core

import (
	"testing"

	"repro/internal/qprog"
	"repro/internal/sfq"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Distance: 4, PhysicalError: 0.01}); err == nil {
		t.Error("even distance accepted")
	}
	if _, err := New(Config{Distance: 3, PhysicalError: 2}); err == nil {
		t.Error("p=2 accepted")
	}
	if _, err := New(Config{Distance: 3, PhysicalError: 0.01, SyndromeCycleNs: -1}); err == nil {
		t.Error("negative cycle accepted")
	}
}

func TestDefaultsAndAccessors(t *testing.T) {
	s, err := New(Config{Distance: 3, PhysicalError: 0.01, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if s.Distance() != 3 || s.Lattice().Distance() != 3 {
		t.Error("distance accessors wrong")
	}
	if s.MeshZ().Variant() != sfq.Final {
		t.Error("default variant is not final")
	}
}

func TestRunLifetimeDephasing(t *testing.T) {
	s, err := New(Config{Distance: 5, PhysicalError: 0.04, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.RunLifetime(1200)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Cycles != 1200 || rep.Decodes != 1200 {
		t.Errorf("cycles=%d decodes=%d", rep.Cycles, rep.Decodes)
	}
	if rep.TimeNs.Max <= 0 {
		t.Error("no decode timing collected")
	}
	// The paper's headline: decoding is online — far under the 400 ns
	// syndrome cycle.
	if !rep.CycleBudgetOK {
		t.Errorf("decoder exceeded cycle budget: max %.1f ns", rep.TimeNs.Max)
	}
	if rep.TimeNs.Max > 25 {
		t.Errorf("d=5 worst decode %.1f ns, paper's bound is ~20 ns at d=9", rep.TimeNs.Max)
	}
}

func TestRunLifetimeDepolarizing(t *testing.T) {
	s, err := New(Config{Distance: 3, PhysicalError: 0.03, Depolarizing: true, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.RunLifetime(400)
	if err != nil {
		t.Fatal(err)
	}
	// Two planes decode per cycle under depolarizing noise.
	if rep.Decodes != 800 {
		t.Errorf("decodes=%d want 800", rep.Decodes)
	}
}

func TestExecutionTrace(t *testing.T) {
	s, err := New(Config{Distance: 5, PhysicalError: 0.03, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.RunLifetime(300); err != nil {
		t.Fatal(err)
	}
	ad, err := qprog.Cuccaro(8)
	if err != nil {
		t.Fatal(err)
	}
	online, offline, err := s.ExecutionTrace(ad.Circuit.Decompose(), 800)
	if err != nil {
		t.Fatal(err)
	}
	if online.Slowdown() > 1.1 {
		t.Errorf("online slowdown %v", online.Slowdown())
	}
	if offline.Slowdown() < 100 {
		t.Errorf("offline slowdown %v not exponential", offline.Slowdown())
	}
	if online.TGateCount != offline.TGateCount {
		t.Error("traces saw different programs")
	}
}

func TestFootprintAndSQV(t *testing.T) {
	s, err := New(Config{Distance: 9, PhysicalError: 1e-5, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	area, power, modules := s.Footprint()
	if modules != 289 || area <= 0 || power <= 0 {
		t.Errorf("footprint: %v %v %v", area, power, modules)
	}
	s3, err := New(Config{Distance: 3, PhysicalError: 1e-5, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := s3.SQVBoost(1024)
	if err != nil {
		t.Fatal(err)
	}
	if plan.LogicalQubits != 78 || plan.BoostVsTarget < 1000 {
		t.Errorf("plan = %+v", plan)
	}
}
