// Package core is the NISQ+ system façade: the paper's Approximate
// Quantum Error Correction (AQEC) stack assembled end to end. A System
// couples a simulated quantum substrate (lattice + error channel +
// stabilizer extraction) to the online SFQ decoder mesh, and exposes the
// paper's headline analyses — logical-qubit lifetime, real-time decoder
// timing, backlog-free program execution, hardware footprint, and the
// Simple-Quantum-Volume boost.
//
// This is the package the runnable examples build on; everything under
// internal/ is reachable from it.
package core

import (
	"fmt"

	"repro/internal/backlog"
	"repro/internal/lattice"
	"repro/internal/noise"
	"repro/internal/qprog"
	"repro/internal/sfq"
	"repro/internal/sfqchip"
	"repro/internal/sqv"
	"repro/internal/stats"
	"repro/internal/surface"
)

// Config describes one NISQ+ system.
type Config struct {
	// Distance is the surface-code distance (odd, >= 3).
	Distance int
	// PhysicalError is the per-cycle physical error rate p.
	PhysicalError float64
	// Depolarizing selects the depolarizing channel (both decode
	// planes); the default is the paper's pure-dephasing channel.
	Depolarizing bool
	// Variant selects the SFQ design; zero value means the final design.
	Variant sfq.Variant
	// SyndromeCycleNs is the stabilizer round time; 400 ns if unset.
	SyndromeCycleNs float64
	// Seed drives all randomness.
	Seed int64
}

// System is a configured NISQ+ machine simulation.
type System struct {
	cfg     Config
	lat     *lattice.Lattice
	sim     *surface.Simulator
	meshZ   *sfq.Mesh
	meshX   *sfq.Mesh
	decodes []sfq.Stats
}

// New validates the configuration and assembles the system.
func New(cfg Config) (*System, error) {
	if cfg.Variant == (sfq.Variant{}) {
		cfg.Variant = sfq.Final
	}
	if cfg.SyndromeCycleNs == 0 {
		cfg.SyndromeCycleNs = 400
	}
	if cfg.SyndromeCycleNs < 0 {
		return nil, fmt.Errorf("core: negative syndrome cycle")
	}
	lat, err := lattice.New(cfg.Distance)
	if err != nil {
		return nil, err
	}
	var ch noise.Channel
	if cfg.Depolarizing {
		ch, err = noise.NewDepolarizing(cfg.PhysicalError)
	} else {
		ch, err = noise.NewDephasing(cfg.PhysicalError)
	}
	if err != nil {
		return nil, err
	}
	s := &System{cfg: cfg, lat: lat}
	s.meshZ = sfq.New(lat.MatchingGraph(lattice.ZErrors), cfg.Variant)
	sc := surface.Config{
		Distance: cfg.Distance,
		Channel:  ch,
		DecoderZ: s.meshZ,
		Seed:     cfg.Seed,
		Observer: func(e lattice.ErrorType, st sfq.Stats) {
			s.decodes = append(s.decodes, st)
		},
	}
	if cfg.Depolarizing {
		s.meshX = sfq.New(lat.MatchingGraph(lattice.XErrors), cfg.Variant)
		sc.DecoderX = s.meshX
	}
	s.sim, err = surface.New(sc)
	if err != nil {
		return nil, err
	}
	return s, nil
}

// Distance returns the configured code distance.
func (s *System) Distance() int { return s.cfg.Distance }

// Lattice exposes the underlying code layout.
func (s *System) Lattice() *lattice.Lattice { return s.lat }

// MeshZ exposes the phase-flip decoder mesh (for direct experiments).
func (s *System) MeshZ() *sfq.Mesh { return s.meshZ }

// LifetimeReport extends the surface result with decoder-timing moments.
type LifetimeReport struct {
	surface.Result
	// Decodes is the number of mesh invocations observed.
	Decodes int
	// TimeNs summarizes per-round decode latency (Table IV's columns).
	TimeNs stats.Summary
	// CycleBudgetOK reports whether the decoder's worst observed round
	// finished within one syndrome generation cycle — the paper's
	// online-decoding requirement.
	CycleBudgetOK bool
}

// RunLifetime simulates the given number of syndrome cycles and reports
// the logical error rate together with decoder timing.
func (s *System) RunLifetime(cycles int) (LifetimeReport, error) {
	s.decodes = s.decodes[:0]
	res, err := s.sim.Run(cycles)
	if err != nil {
		return LifetimeReport{}, err
	}
	times := make([]float64, len(s.decodes))
	for i, st := range s.decodes {
		times[i] = st.TimeNs()
	}
	sum := stats.Summarize(times)
	return LifetimeReport{
		Result:        res,
		Decodes:       len(s.decodes),
		TimeNs:        sum,
		CycleBudgetOK: sum.Max <= s.cfg.SyndromeCycleNs,
	}, nil
}

// ExecutionTrace runs a Clifford+T program through the backlog model
// twice — once at the given offline decode latency and once at this
// system's worst observed SFQ latency — and returns both traces. Run a
// lifetime first so the mesh has timing samples; otherwise the paper's
// 20 ns bound is assumed.
func (s *System) ExecutionTrace(c *qprog.Circuit, offlineDecodeNs float64) (online, offline backlog.Trace, err error) {
	prog := backlog.Program(c)
	online, err = backlog.ModelForDecodes(s.cfg.SyndromeCycleNs, 20, s.decodes).Execute(prog)
	if err != nil {
		return
	}
	offline, err = backlog.Model{SyndromeCycleNs: s.cfg.SyndromeCycleNs, DecodeNs: offlineDecodeNs}.Execute(prog)
	return
}

// Footprint reports the decoder hardware cost at this distance from the
// ERSFQ synthesis model.
func (s *System) Footprint() (areaMm2, powerMw float64, modules int) {
	return sfqchip.DecoderFootprint(s.cfg.Distance)
}

// SQVBoost evaluates the Fig. 1 Simple-Quantum-Volume expansion for a
// machine built from this system's physical parameters.
func (s *System) SQVBoost(physicalQubits int) (sqv.Plan, error) {
	m := sqv.Machine{PhysicalQubits: physicalQubits, ErrorRate: s.cfg.PhysicalError}
	return m.PlanAt(sqv.NISQPlusFit(), s.cfg.Distance)
}
