// Package repro is a from-scratch Go reproduction of "NISQ+: Boosting
// quantum computing power by approximating quantum error correction"
// (Holmes et al., ISCA 2020).
//
// The library lives under internal/: the surface-code substrate
// (lattice, pauli, noise, stabilizer, surface), the decoders (decoder,
// decoder/greedy, decoder/mwpm over match, decoder/unionfind, and the
// paper's SFQ mesh in sfq), the hardware model (sfqchip), the workload
// and timing models (qprog, backlog, tradeoff, sqv), the Monte-Carlo
// harness (stats) and the system façade (core). The cmd/ binaries
// regenerate every table and figure of the paper's evaluation; see
// DESIGN.md for the per-experiment index and EXPERIMENTS.md for
// paper-versus-measured results. Benchmarks covering each experiment
// live in bench_test.go next to this file.
package repro
