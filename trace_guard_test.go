package repro_test

import (
	"runtime"
	"runtime/debug"
	"sort"
	"testing"
	"time"

	"repro/internal/decodepool"
	"repro/internal/knob"
	"repro/internal/lattice"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/sfq"
)

// TestTraceOverheadGuard pins the flight recorder's cost on the serve
// pipeline: at the default 1-in-16 sampling, a traced server must stay
// within 2% of a tracing-off server on the same sequential decode
// workload. The budget holds because tracing is clock-read frugal —
// submit shares one time.Now across its stamps and the arrival meter,
// the batch path reuses the reads the service-time signal already pays
// for, and only the response write adds one. Opt-in with the same
// REPRO_OBS_GUARD knob as the telemetry guard; the comparison is a
// median of per-round paired ratios for the noise reasons below.
func TestTraceOverheadGuard(t *testing.T) {
	if !knob.Bool("REPRO_OBS_GUARD") {
		t.Skip("timing guard; set REPRO_OBS_GUARD=1 to run")
	}
	if decodepool.RaceEnabled {
		t.Skip("timing is not meaningful under -race")
	}
	l := lattice.MustNew(9)
	g := l.MatchingGraph(lattice.ZErrors)
	syndromes := hotPathSyndromes(t, l, g, 64, 109)

	newServer := func(traceSample int) *serve.Server {
		return serve.New(serve.Config{
			Variant: sfq.Final, Distances: []int{9},
			Registry:    obs.NewRegistry(),
			TraceSample: traceSample,
		})
	}
	traced := newServer(16) // the default sampling period, pinned explicitly
	defer traced.Close()
	plain := newServer(-1)
	defer plain.Close()

	loop := func(s *serve.Server) time.Duration {
		const reps = 16
		start := time.Now()
		for i := 0; i < reps*len(syndromes); i++ {
			if resp := s.Decode(9, lattice.ZErrors, uint64(i), syndromes[i%len(syndromes)]); resp.Status != serve.StatusOK {
				t.Fatalf("decode %d: %+v", i, resp)
			}
		}
		return time.Since(start)
	}
	loop(plain) // warm both servers' meshes, scratch and queues
	loop(traced)

	// A 2% wall-clock gate cannot coexist with GC pacing noise: a
	// collection landing inside one side's rounds but not the other's
	// swamps the effect being measured. Park the collector for the
	// measured region (a few tens of MB of short-lived responses).
	restore := debug.SetGCPercent(-1)
	defer debug.SetGCPercent(restore)
	runtime.GC()

	// Noise on a shared machine is bursty and can sit on one side of a
	// min-of-rounds comparison for several rounds. Pairing instead:
	// each round measures both servers back to back and contributes one
	// ratio — a temporally adjacent A/B pair is the quantity the gate
	// is actually about. Contention only ever inflates a round's ratio
	// (whichever side the burst lands on loses), while a real tracing
	// regression is present in every round including the quietest, so
	// the gate reads a low order statistic: the 3rd smallest of 9
	// discards contaminated rounds without hiding a true cost.
	ratios := make([]float64, 0, 9)
	for round := 0; round < cap(ratios); round++ {
		p := loop(plain)
		tr := loop(traced)
		ratios = append(ratios, float64(tr)/float64(p))
	}
	sort.Float64s(ratios)
	ratio := ratios[2]
	t.Logf("paired round ratios %.4f, gate reads %.4f", ratios, ratio)
	if ratio > 1.02 {
		t.Errorf("traced serve path is %.1f%% slower than tracing-off, want <= 2%%", (ratio-1)*100)
	}
}
