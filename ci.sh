#!/bin/sh
# ci.sh — the repository's continuous-integration gate.
#
#   ./ci.sh
#
# Runs, in order: go vet, go build, the full test suite, the test suite
# under the race detector, a short native-fuzz smoke over the blossom
# matcher, the decode dispatch, the SFQ mesh kernel pair, and the SWAR
# batch kernel, short bit-plane/legacy and batch/scalar conformance
# passes, a batched-vs-scalar sweep determinism gate under the race
# detector, the telemetry gates (a dedicated
# race pass over internal/obs, the live /metrics smoke scrape, and the
# <=5% instrumentation-overhead guard on the decode hot path), and the
# decode-hot-path benchmarks
# (which also regenerate BENCH_pr2.json, BENCH_pr3.json and
# BENCH_pr5.json). The race
# run sets
# REPRO_MC_SHORT=1, which the statistical tests in internal/stats and
# internal/mc honour by shrinking their trial budgets (their acceptance
# thresholds scale with sample size, so the checks stay valid — just
# cheaper, since the race detector slows execution roughly tenfold).
#
# Unset REPRO_MC_SHORT (the plain `go test ./...` below) exercises the
# full-size budgets.
set -eu

cd "$(dirname "$0")"

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test =="
go test ./...

echo "== go test -race (short trials) =="
REPRO_MC_SHORT=1 go test -race ./...

echo "== fuzz smoke =="
go test -run='^$' -fuzz=FuzzBlossom -fuzztime=5s ./internal/match
go test -run='^$' -fuzz=FuzzDecode -fuzztime=5s ./internal/decoder
go test -run='^$' -fuzz='^FuzzMesh$' -fuzztime=5s ./internal/sfq
go test -run='^$' -fuzz='^FuzzBatchMesh$' -fuzztime=5s ./internal/sfq

echo "== mesh kernel conformance (short) =="
REPRO_MC_SHORT=1 go test -run TestBitplaneConformance ./internal/sfq
REPRO_MC_SHORT=1 go test -run TestBatchMeshConformance ./internal/sfq

echo "== batched sweep determinism (race, short trials) =="
REPRO_MC_SHORT=1 go test -race -run TestCurvesBatchDeterminism -count=1 ./internal/stats

echo "== telemetry: obs race, live scrape, overhead guard =="
go test -race -count=1 ./internal/obs
REPRO_MC_SHORT=1 go test -run TestObsMetricsSmokeSweep -count=1 .
REPRO_OBS_GUARD=1 go test -run TestObsOverheadGuard -count=1 .

echo "== decode hot-path benchmarks =="
go test -run='^$' -bench BenchmarkDecodeHotPath -benchtime 100x -benchmem .
go test -run='^$' -bench BenchmarkSFQMesh -benchtime 100x -benchmem .
go run ./cmd/bench -iters 2000 -out BENCH_pr2.json -mesh-out BENCH_pr3.json -batch-out BENCH_pr5.json

echo "CI OK"
