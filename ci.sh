#!/bin/sh
# ci.sh — the repository's continuous-integration gate.
#
#   ./ci.sh
#
# Runs, in order: go vet, go build, the full test suite, the test suite
# under the race detector, a short native-fuzz smoke over the blossom
# matcher, the decode dispatch, the SFQ mesh kernel pair, and the SWAR
# batch kernel, short bit-plane/legacy and batch/scalar conformance
# passes, the two-level escalation gates (differential conformance
# against pure mesh / pure MWPM, a FuzzTwoLevel smoke, and the
# two-level sweep determinism test under the race detector), a
# batched-vs-scalar sweep determinism gate under the race
# detector, the telemetry gates (a dedicated
# race pass over internal/obs, the live /metrics smoke scrape, and the
# <=5% instrumentation-overhead guard on the decode hot path), and the
# decode-hot-path benchmarks
# (which also regenerate BENCH_pr2.json, BENCH_pr3.json and
# BENCH_pr5.json), and finally the decode service gates: wire
# conformance + a race-detector hammer over internal/serve (including
# the escalation hammer), a FuzzFrame
# smoke, a live serve+loadgen run in two-level mode that regenerates
# BENCH_pr6.json, and the two-level accuracy-vs-latency frontier run
# that regenerates BENCH_pr7.json. PR 8 adds: W-word wide-kernel
# conformance (all widths bit-identical to the scalar kernel) and a
# FuzzWideBatch smoke, a race pass over the work-stealing scheduler
# plus the steal-schedule sweep-determinism gate, and regeneration of
# BENCH_pr8.json — cmd/bench hard-fails if the W=4 kernel is below
# 1.5x the W=1 layout at d >= 9, allocates, drops below 0.8x ideal
# scaling on rows with workers <= NumCPU, or produces a sweep
# fingerprint that differs across any worker/steal/width schedule;
# loadgen -sweep then appends the serve lane-fill/latency rows.
# PR 9 adds request-lifecycle tracing gates: the trace overhead guard
# (traced serve path within 2% of tracing-off at the default 1-in-16
# sampling, same REPRO_OBS_GUARD opt-in), and the serve+loadgen run now
# scrapes /debug/traces with -trace-check, which
# hard-fails unless the flight recorder captured a shed decision with
# controller inputs and an outlier trace whose per-stage decomposition
# telescopes to its wall time.
# PR 10 adds the data-plane fast-path gates: the AllocsPerRun-0 check
# on the steady-state serve path (submit -> queue -> decode -> deliver
# -> ring -> response write with a discard conn must allocate nothing
# per request), the weighted-shed ordering property tests under the
# race detector (cheap d=3 sheds before expensive d=13;
# REPRO_SERVE_WEIGHTED=0 restores uniform shedding), the sojourn-drop
# policy test, and the trace scrape now writes BENCH_pr10.json whose
# -trace-check additionally hard-fails unless shed decisions carry the
# new weight/sojourn inputs and serve_queue_wait_ns p99 at the 2R point
# improved >=20% over the embedded PR 9 baseline row.
# The race
# run sets
# REPRO_MC_SHORT=1, which the statistical tests in internal/stats and
# internal/mc honour by shrinking their trial budgets (their acceptance
# thresholds scale with sample size, so the checks stay valid — just
# cheaper, since the race detector slows execution roughly tenfold).
#
# Unset REPRO_MC_SHORT (the plain `go test ./...` below) exercises the
# full-size budgets.
set -eu

cd "$(dirname "$0")"

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test =="
go test ./...

echo "== go test -race (short trials) =="
REPRO_MC_SHORT=1 go test -race ./...

echo "== fuzz smoke =="
go test -run='^$' -fuzz=FuzzBlossom -fuzztime=5s ./internal/match
go test -run='^$' -fuzz=FuzzDecode -fuzztime=5s ./internal/decoder
go test -run='^$' -fuzz='^FuzzMesh$' -fuzztime=5s ./internal/sfq
go test -run='^$' -fuzz='^FuzzBatchMesh$' -fuzztime=5s ./internal/sfq
go test -run='^$' -fuzz='^FuzzWideBatch$' -fuzztime=5s ./internal/sfq
go test -run='^$' -fuzz='^FuzzFrame$' -fuzztime=5s ./internal/serve
go test -run='^$' -fuzz='^FuzzTwoLevel$' -fuzztime=5s ./internal/twolevel

echo "== mesh kernel conformance (short) =="
REPRO_MC_SHORT=1 go test -run TestBitplaneConformance ./internal/sfq
REPRO_MC_SHORT=1 go test -run TestBatchMeshConformance ./internal/sfq
REPRO_MC_SHORT=1 go test -run TestStatsExitPathParity ./internal/sfq
REPRO_MC_SHORT=1 go test -run 'TestBatchMeshWidthConformance|TestBatchMeshWidthsAgree|TestBatchMeshWidthZeroAllocs' ./internal/sfq

echo "== work-stealing scheduler: race pass + steal-schedule determinism =="
go test -race -count=1 ./internal/sched
REPRO_MC_SHORT=1 go test -race -run TestCurvesStealScheduleDeterminism -count=1 ./internal/stats

echo "== two-level escalation: differential conformance + sweep determinism (race) =="
REPRO_MC_SHORT=1 go test -run 'TestTwoLevelConformance|TestTwoLevelCounters' -count=1 ./internal/twolevel
REPRO_MC_SHORT=1 go test -race -run TestCurvesTwoLevelDeterminism -count=1 ./internal/stats

echo "== decode service: wire conformance + race hammer + backpressure =="
REPRO_MC_SHORT=1 go test -run 'TestWireConformance|TestHTTPConformance' -count=1 ./internal/serve
REPRO_MC_SHORT=1 go test -race -count=1 ./internal/serve

echo "== serve fast path: zero-alloc gate + weighted shed ordering (race) =="
# The steady-state serve path must allocate nothing per request: pooled
# responses and syndrome buffers, ring out-queue, no per-request
# closures. Run without -race (the detector's instrumentation
# allocates).
go test -run TestSteadyStateZeroAllocs -count=1 ./internal/serve
# Shed ordering under overload is monotone in measured decode cost, the
# sojourn bound drops aged work, and REPRO_SERVE_WEIGHTED=0 restores
# uniform shedding — all racing the controller.
REPRO_MC_SHORT=1 go test -race -run 'TestShedClassMonotone|TestWeightedShedOrdering|TestWeightedShedDisabled|TestSojournDrop|TestSubmitCopiesSyndrome|TestWireAliasingPipelined|TestClientFlushBatching' -count=1 ./internal/serve

echo "== batched sweep determinism (race, short trials) =="
REPRO_MC_SHORT=1 go test -race -run TestCurvesBatchDeterminism -count=1 ./internal/stats

echo "== telemetry: obs race, live scrape, overhead guard =="
go test -race -count=1 ./internal/obs
REPRO_MC_SHORT=1 go test -run TestObsMetricsSmokeSweep -count=1 .
REPRO_OBS_GUARD=1 go test -run 'TestObsOverheadGuard|TestTraceOverheadGuard' -count=1 .

echo "== decode hot-path benchmarks =="
go test -run='^$' -bench BenchmarkDecodeHotPath -benchtime 100x -benchmem .
go test -run='^$' -bench BenchmarkSFQMesh -benchtime 100x -benchmem .
# -allow-dirty: ci.sh runs on development trees; the manifest still
# records git_dirty so the artifact is honest about its provenance.
go run ./cmd/bench -iters 2000 -out BENCH_pr2.json -mesh-out BENCH_pr3.json \
	-batch-out BENCH_pr5.json -wide-out BENCH_pr8.json -allow-dirty

echo "== decode service end to end: serve + loadgen (BENCH_pr6.json) =="
# A live serve instance under open-loop Poisson load. -lanes 1 lowers
# capacity so the calibrated R/2, R, 2R sweep straddles saturation in
# about three seconds on any machine.
SERVE_TMP=$(mktemp -d)
SERVE_PID=""
cleanup_serve() {
	[ -n "$SERVE_PID" ] && kill "$SERVE_PID" 2>/dev/null || true
	rm -rf "$SERVE_TMP"
}
trap cleanup_serve EXIT
go build -o "$SERVE_TMP/serve" ./cmd/serve
go build -o "$SERVE_TMP/loadgen" ./cmd/loadgen
# -escalate: the run exercises the full two-level service path — flags
# on the wire, the bounded level-2 queue, and the merged two-tier
# latency signal into admission control. -esc-hot 14 keeps the
# escalation rate moderate at the loadgen workload's density.
"$SERVE_TMP/serve" -d 9,13 -lanes 1 -escalate -esc-hot 14 -addr-file "$SERVE_TMP/addr" &
SERVE_PID=$!
for _ in $(seq 50); do
	[ -s "$SERVE_TMP/addr" ] && break
	sleep 0.1
done
TCP_ADDR=$(awk '/^tcp /{print $2}' "$SERVE_TMP/addr")
HTTP_ADDR=$(awk '/^http /{print $2}' "$SERVE_TMP/addr")
[ -n "$TCP_ADDR" ] && [ -n "$HTTP_ADDR" ] || { echo "serve did not publish its addresses"; exit 1; }
# -trace-out scrapes /debug/traces after the sweep into BENCH_pr10.json;
# -trace-check hard-fails unless the recorder holds at least one shed
# decision with admission-controller inputs, one shed decision carrying
# the PR 10 weight/sojourn inputs, one outlier trace whose stage
# decomposition telescopes to its wall time, AND the measured
# serve_queue_wait_ns p99 beats the embedded PR 9 baseline by >=20%
# (the sojourn bound + flush batching are what buy the improvement).
"$SERVE_TMP/loadgen" -addr "$TCP_ADDR" -d 13 -duration 1s -out BENCH_pr6.json \
	-trace-http "http://$HTTP_ADDR" -trace-out BENCH_pr10.json -trace-check
kill "$SERVE_PID"
wait "$SERVE_PID" 2>/dev/null || true
SERVE_PID=""

echo "== serve worker sweep: lane fill vs latency (BENCH_pr8.json serve_rows) =="
"$SERVE_TMP/loadgen" -sweep -sweep-out BENCH_pr8.json -sweep-clients 64 -duration 1500ms

echo "== two-level frontier: accuracy vs latency (BENCH_pr7.json) =="
go run ./cmd/compare -frontier -distances 7,9,11 -frontier-p 0.03,0.06,0.09 \
	-cycles 2500 -seed 1 -out BENCH_pr7.json

echo "CI OK"
