package repro_test

import (
	"testing"
	"time"

	"repro/internal/decodepool"
	"repro/internal/decoder/greedy"
	"repro/internal/knob"
	"repro/internal/lattice"
	"repro/internal/obs"
)

// TestObsOverheadGuard pins the cost of instrumenting the decode hot
// path: with the default 1-in-16 latency sampling, an instrumented
// scratch must stay within 5% of a plain one on the same workload. The
// guard is opt-in (REPRO_OBS_GUARD=1, set by ci.sh) because wall-clock
// ratios are too noisy for an always-on unit test; min-of-rounds with
// interleaved measurement keeps the comparison stable when it does run.
func TestObsOverheadGuard(t *testing.T) {
	if !knob.Bool("REPRO_OBS_GUARD") {
		t.Skip("timing guard; set REPRO_OBS_GUARD=1 to run")
	}
	if decodepool.RaceEnabled {
		t.Skip("timing is not meaningful under -race")
	}
	l := lattice.MustNew(9)
	g := l.MatchingGraph(lattice.ZErrors)
	syndromes := hotPathSyndromes(t, l, g, 64, 109)
	dec := greedy.New()

	plain := decodepool.NewScratch()
	inst := decodepool.NewScratch()
	inst.Instrument(obs.NewHistogram(), nil, 0)

	loop := func(s *decodepool.Scratch) time.Duration {
		const reps = 400
		start := time.Now()
		for i := 0; i < reps*len(syndromes); i++ {
			if _, err := dec.DecodeInto(g, syndromes[i%len(syndromes)], s); err != nil {
				t.Fatal(err)
			}
		}
		return time.Since(start)
	}
	loop(plain) // warm caches and scratch growth for both
	loop(inst)

	// Interleave rounds and keep each side's minimum: the minimum is
	// the least-noisy estimator of the true cost, and interleaving
	// cancels slow drift (thermal, scheduler) between the two sides.
	minPlain, minInst := time.Duration(1<<62), time.Duration(1<<62)
	for round := 0; round < 7; round++ {
		if d := loop(plain); d < minPlain {
			minPlain = d
		}
		if d := loop(inst); d < minInst {
			minInst = d
		}
	}
	ratio := float64(minInst) / float64(minPlain)
	t.Logf("plain %v, instrumented %v, ratio %.4f", minPlain, minInst, ratio)
	if ratio > 1.05 {
		t.Errorf("instrumented decode path is %.1f%% slower than plain, want <= 5%%", (ratio-1)*100)
	}
}
