package repro_test

import (
	"io"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/decoder"
	"repro/internal/decoder/greedy"
	"repro/internal/mc"
	"repro/internal/noise"
	"repro/internal/obs"
	"repro/internal/stats"
)

// TestObsMetricsSmokeSweep drives a small lifetime sweep with telemetry
// enabled and scrapes the live /metrics endpoint from inside the
// sweep's own progress callback — i.e. while shards are still running —
// checking that the engine counters, the trial-latency histogram, and
// the sampled decode-latency histogram are all being published as the
// run progresses, not only after it finishes.
func TestObsMetricsSmokeSweep(t *testing.T) {
	reg := obs.NewRegistry()
	srv, err := obs.Serve("127.0.0.1:0", reg, false)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	var scrapes atomic.Int32
	var lastBody atomic.Value
	_, err = stats.Curves(stats.CurveConfig{
		Distances:  []int{3},
		Rates:      []float64{0.05},
		Cycles:     1200,
		NewChannel: func(p float64) (noise.Channel, error) { return noise.NewDephasing(p) },
		NewDecoderZ: func(d int) decoder.Decoder {
			return greedy.New()
		},
		Seed:    5,
		Workers: 2,
		// An unreachable width target with a small first checkpoint
		// forces several progress reports per point, so the scrape
		// really happens mid-sweep.
		TargetRelWidth: 1e-9,
		MinTrials:      100,
		Obs:            reg,
		Progress: func(p mc.Progress) {
			resp, err := http.Get("http://" + srv.Addr + "/metrics")
			if err != nil {
				t.Errorf("mid-sweep scrape: %v", err)
				return
			}
			body, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				t.Errorf("mid-sweep scrape: %v", err)
				return
			}
			lastBody.Store(string(body))
			scrapes.Add(1)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if scrapes.Load() == 0 {
		t.Fatal("sweep finished without a single progress checkpoint scrape")
	}
	body, _ := lastBody.Load().(string)
	for _, series := range []string{
		"mc_trials_total",
		"mc_trial_ns_bucket{",
		"mc_trial_ns_count",
		"decodepool_decodes_total",
		"decodepool_decode_ns_bucket{",
	} {
		if !strings.Contains(body, series) {
			t.Errorf("live /metrics missing %q\nexposition:\n%s", series, body)
		}
	}
	t.Logf("scraped /metrics %d times mid-sweep", scrapes.Load())
}
